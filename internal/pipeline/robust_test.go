package pipeline

// Tests of the hardened execution layer: cancellation and deadlines, panic
// isolation, graceful degradation onto the verified program-order fallback,
// and the seeded chaos test driving all of it at once through
// internal/faults. Run under -race in CI (the chaos job).

import (
	"context"
	"errors"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"doacross/internal/diag"
	"doacross/internal/faults"
	"doacross/internal/passes"
)

func reqsFor(srcs []string) []Request {
	reqs := make([]Request, len(srcs))
	for i, s := range srcs {
		reqs[i] = Request{Source: s}
	}
	return reqs
}

// sleepHook sleeps at the named stage, to make requests slow enough for the
// context machinery to cut them off.
func sleepHook(stage string, d time.Duration) func(string, string) error {
	return func(s, name string) error {
		if s == stage {
			time.Sleep(d)
		}
		return nil
	}
}

// TestCancelMidBatch: cancelling the batch context returns promptly with
// every result slot filled in request order — completed requests intact,
// cut-off requests failed with the context error.
func TestCancelMidBatch(t *testing.T) {
	reqs := reqsFor(corpus(40))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	b, err := RunContext(ctx, reqs, Options{
		Workers:   2,
		FaultHook: sleepHook(StageSchedule, 20*time.Millisecond),
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= time.Second {
		t.Errorf("cancelled batch took %v, want < 1s", elapsed)
	}
	if len(b.Loops) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(b.Loops), len(reqs))
	}
	done, cut := 0, 0
	for i, lr := range b.Loops {
		if lr.Index != i {
			t.Fatalf("result %d has Index %d: order not preserved", i, lr.Index)
		}
		if lr.Err == nil {
			done++
			if lr.Machines[0].Sync == nil {
				t.Errorf("completed request %s missing schedules", lr.Name)
			}
			continue
		}
		cut++
		if !errors.Is(lr.Err, context.Canceled) {
			t.Errorf("request %s failed with %v, want context.Canceled", lr.Name, lr.Err)
		}
	}
	if done == 0 || cut == 0 {
		t.Errorf("cancellation not mid-batch: %d done, %d cut off", done, cut)
	}
	if b.Stats.Timeouts == 0 {
		t.Error("timeouts counter not bumped by cancellation")
	}
}

// TestBatchDeadline: Options.Deadline cuts the batch off the same way an
// external cancellation does.
func TestBatchDeadline(t *testing.T) {
	b, err := Run(reqsFor(corpus(30)), Options{
		Workers:   2,
		Deadline:  70 * time.Millisecond,
		FaultHook: sleepHook(StageSchedule, 15*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	done, cut := 0, 0
	for _, lr := range b.Loops {
		if lr.Err == nil {
			done++
		} else if errors.Is(lr.Err, context.DeadlineExceeded) {
			cut++
		} else {
			t.Errorf("request %s failed with %v, want context.DeadlineExceeded", lr.Name, lr.Err)
		}
	}
	if done == 0 || cut == 0 {
		t.Errorf("deadline not mid-batch: %d done, %d cut off", done, cut)
	}
	if b.Stats.Timeouts != int64(cut) {
		t.Errorf("timeouts counter = %d, want %d", b.Stats.Timeouts, cut)
	}
}

// TestRequestTimeout: Options.RequestTimeout bounds each request on its own
// clock; every slow request fails individually.
func TestRequestTimeout(t *testing.T) {
	b, err := Run(reqsFor(corpus(6)), Options{
		Workers:        3,
		RequestTimeout: 20 * time.Millisecond,
		FaultHook:      sleepHook(StageSchedule, 60*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range b.Loops {
		if lr.Err == nil {
			t.Errorf("request %s beat a 20ms timeout through a 60ms stage", lr.Name)
		} else if !errors.Is(lr.Err, context.DeadlineExceeded) {
			t.Errorf("request %s failed with %v, want context.DeadlineExceeded", lr.Name, lr.Err)
		}
	}
	if b.Stats.Timeouts != int64(len(b.Loops)) {
		t.Errorf("timeouts counter = %d, want %d", b.Stats.Timeouts, len(b.Loops))
	}
}

var stackDigestRe = regexp.MustCompile(`stack [0-9a-f]{12}`)

// TestPanicIsolationCompilePass: a panic inside one request's compilation
// fails that request with a structured diagnostic (pass name, request name,
// stack digest) and leaves the rest of the batch untouched.
func TestPanicIsolationCompilePass(t *testing.T) {
	hook := func(stage, name string) error {
		if name == "loop1" && stage == passes.PassAnalyze {
			panic("poisoned analysis")
		}
		return nil
	}
	b, err := Run(reqsFor(corpus(3)), Options{FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if b.Loops[0].Err != nil || b.Loops[2].Err != nil {
		t.Errorf("healthy requests failed: %v / %v", b.Loops[0].Err, b.Loops[2].Err)
	}
	lr := b.Loops[1]
	if lr.Err == nil {
		t.Fatal("panicking request succeeded")
	}
	d, ok := diag.As(lr.Err)
	if !ok {
		t.Fatalf("panic not recovered into a diagnostic: %v", lr.Err)
	}
	if d.Stage != passes.PassAnalyze {
		t.Errorf("diagnostic stage = %q, want %q", d.Stage, passes.PassAnalyze)
	}
	for _, want := range []string{"panic: poisoned analysis", "request loop1"} {
		if !strings.Contains(d.Msg, want) {
			t.Errorf("diagnostic %q missing %q", d.Msg, want)
		}
	}
	if !stackDigestRe.MatchString(d.Msg) {
		t.Errorf("diagnostic %q carries no stack digest", d.Msg)
	}
	if b.Stats.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", b.Stats.Panics)
	}
}

// TestPanicIsolationScheduleStage: a panic in the scheduling stage degrades
// the request onto the verified fallback instead of failing it.
func TestPanicIsolationScheduleStage(t *testing.T) {
	hook := func(stage, name string) error {
		if name == "loop0" && stage == StageSchedule {
			panic("scheduler bug")
		}
		return nil
	}
	b, err := Run(reqsFor(corpus(2)), Options{FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	lr := b.Loops[0]
	if lr.Err != nil {
		t.Fatalf("panicking schedule stage failed the request instead of degrading: %v", lr.Err)
	}
	mr := lr.Machines[0]
	if !mr.Degraded || !lr.Degraded() {
		t.Fatal("request not marked Degraded")
	}
	if !strings.Contains(mr.DegradedReason, "panic: scheduler bug") || !stackDigestRe.MatchString(mr.DegradedReason) {
		t.Errorf("degraded reason = %q", mr.DegradedReason)
	}
	if err := mr.Sync.Validate(); err != nil {
		t.Errorf("fallback schedule invalid: %v", err)
	}
	if mr.SyncTime <= 0 {
		t.Errorf("fallback not simulated: SyncTime = %d", mr.SyncTime)
	}
	if b.Loops[1].Degraded() || b.Loops[1].Err != nil {
		t.Error("healthy request affected by neighbour's panic")
	}
	if b.Stats.Panics != 1 || b.Stats.Fallbacks != 1 {
		t.Errorf("panics/fallbacks = %d/%d, want 1/1", b.Stats.Panics, b.Stats.Fallbacks)
	}
}

// TestScheduleFallback: scheduler errors degrade every affected request onto
// the program-order baseline, verified and simulated.
func TestScheduleFallback(t *testing.T) {
	hook := func(stage, name string) error {
		if stage == StageSchedule {
			return errors.New("synthetic scheduler failure")
		}
		return nil
	}
	b, err := Run(reqsFor(corpus(6)), Options{Best: true, FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range b.Loops {
		if lr.Err != nil {
			t.Fatalf("%s: %v", lr.Name, lr.Err)
		}
		mr := lr.Machines[0]
		if !mr.Degraded || !strings.Contains(mr.DegradedReason, "synthetic scheduler failure") {
			t.Fatalf("%s not degraded with reason: %+q", lr.Name, mr.DegradedReason)
		}
		// The whole answer is the one verified fallback schedule.
		if mr.List != mr.Sync || mr.Best != mr.Sync {
			t.Errorf("%s: degraded result not served by the single fallback", lr.Name)
		}
		if err := mr.Sync.Validate(); err != nil {
			t.Errorf("%s: fallback invalid: %v", lr.Name, err)
		}
		if mr.ListTime != mr.SyncTime || mr.SyncTime <= 0 {
			t.Errorf("%s: fallback times = %d/%d", lr.Name, mr.ListTime, mr.SyncTime)
		}
	}
	if b.Stats.Fallbacks != int64(len(b.Loops)) {
		t.Errorf("fallbacks = %d, want %d", b.Stats.Fallbacks, len(b.Loops))
	}
}

// TestSimulateFallback: simulator failures likewise degrade onto the timed
// fallback.
func TestSimulateFallback(t *testing.T) {
	hook := func(stage, name string) error {
		if stage == StageSimulate {
			return errors.New("synthetic simulator failure")
		}
		return nil
	}
	b, err := Run(reqsFor(corpus(4)), Options{FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range b.Loops {
		if lr.Err != nil {
			t.Fatalf("%s: %v", lr.Name, lr.Err)
		}
		mr := lr.Machines[0]
		if !mr.Degraded {
			t.Fatalf("%s not degraded", lr.Name)
		}
		if err := mr.Sync.Validate(); err != nil {
			t.Errorf("%s: fallback invalid: %v", lr.Name, err)
		}
		if mr.ListTime != mr.SyncTime || mr.SyncTime <= 0 {
			t.Errorf("%s: fallback times = %d/%d", lr.Name, mr.ListTime, mr.SyncTime)
		}
	}
	if b.Stats.Fallbacks != int64(len(b.Loops)) {
		t.Errorf("fallbacks = %d, want %d", b.Stats.Fallbacks, len(b.Loops))
	}
}

// TestDegradedResultsNotCached: a degraded answer must never be published to
// the shared cache — the next batch recomputes and gets the real schedules.
func TestDegradedResultsNotCached(t *testing.T) {
	cache := NewCache()
	hook := func(stage, name string) error {
		if stage == StageSchedule {
			return errors.New("transient scheduler failure")
		}
		return nil
	}
	b1, err := Run([]Request{{Source: fig1}}, Options{Cache: cache, FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if !b1.Loops[0].Degraded() {
		t.Fatal("first batch not degraded")
	}
	b2, err := Run([]Request{{Source: fig1}}, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	lr := b2.Loops[0]
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	if lr.Degraded() {
		t.Error("degraded entry leaked through the cache")
	}
	if n := b2.Stats.Stage(StageSchedule).Count; n != 1 {
		t.Errorf("second batch ran schedule %d times, want 1 (recompute after degradation)", n)
	}
}

// chaosSeed reads the chaos seed from the environment (the CI matrix sets
// it), defaulting to the paper's year.
func chaosSeed(t *testing.T) uint64 {
	if s := os.Getenv("DOACROSS_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad DOACROSS_CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 1997
}

// chaosOutcome is the precomputed expectation for one request under a fault
// plan: because injector decisions are pure functions of (seed, stage, name),
// the test can walk the pipeline's probe sites in order and predict exactly
// what each request does and what the counters end at.
type chaosOutcome struct {
	err       bool
	degraded  bool
	panics    int64
	fallbacks int64
	verified  int64
	rejected  int64
	counts    faults.Counts
}

// expectOutcome mirrors runOne's probe order for an uncached request:
// compile probe, then each compilation pass, then schedule, then the
// independent verifier, then simulate.
func expectOutcome(in *faults.Injector, passNames []string, name string) chaosOutcome {
	var o chaosOutcome
	record := func(k faults.Kind) {
		switch k {
		case faults.Error:
			o.counts.Errors++
		case faults.Panic:
			o.counts.Panics++
		case faults.Delay:
			o.counts.Delays++
		case faults.Corrupt:
			o.counts.Corrupts++
		case faults.Budget:
			o.counts.Budgets++
		}
	}
	if k, ok := in.Decide(faults.StageCompile, name); ok {
		record(k)
		switch k {
		case faults.Panic:
			o.panics++
			fallthrough
		case faults.Error:
			o.err = true
			return o
		}
	}
	for _, p := range passNames {
		if k, ok := in.Decide(p, name); ok {
			record(k)
			switch k {
			case faults.Panic:
				o.panics++
				fallthrough
			case faults.Error:
				o.err = true
				return o
			}
		}
	}
	if k, ok := in.Decide(StageSchedule, name); ok {
		record(k)
		switch k {
		case faults.Panic:
			o.panics++
			fallthrough
		case faults.Error:
			o.degraded = true
			o.fallbacks++
		}
	}
	if k, ok := in.Decide(StageVerify, name); ok && (k == faults.Panic || k == faults.Error) {
		record(k)
		if k == faults.Panic {
			o.panics++
		}
		o.rejected++
		if o.degraded {
			// Even the fallback was rejected: the request errs.
			o.err = true
			return o
		}
		o.degraded = true
		o.fallbacks++
	} else {
		if ok {
			record(k) // a Delay fault fired and the stage went on to pass
		}
		o.verified++
	}
	if k, ok := in.Decide(StageSimulate, name); ok {
		record(k)
		switch k {
		case faults.Panic, faults.Error, faults.Budget:
			if k == faults.Panic {
				o.panics++
			}
			if o.degraded {
				// Even the fallback's simulation was poisoned: the request
				// errs.
				o.err = true
			} else {
				o.degraded = true
				o.fallbacks++
			}
		}
	}
	return o
}

func addCounts(a, b faults.Counts) faults.Counts {
	return faults.Counts{
		Errors:   a.Errors + b.Errors,
		Panics:   a.Panics + b.Panics,
		Delays:   a.Delays + b.Delays,
		Corrupts: a.Corrupts + b.Corrupts,
		Budgets:  a.Budgets + b.Budgets,
	}
}

// chaosPlan is the randomized-fault mix driven through the chaos tests.
func chaosPlan(seed uint64) faults.Plan {
	return faults.Plan{
		Seed:     seed,
		Error:    0.08,
		Panic:    0.05,
		Delay:    0.02,
		Budget:   0.06,
		Corrupt:  0.05, // fires only at cache probes; inert without a cache
		DelayFor: time.Millisecond,
	}
}

// TestChaos drives a large randomized batch through every failure path at
// once and asserts the hardened layer's full contract: request ordering,
// per-request isolation, fallback correctness, and — because the injector is
// deterministic — metrics counters matching the injection plan exactly.
func TestChaos(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 80
	}
	seed := chaosSeed(t)
	srcs := corpus(n)
	passNames := passes.New(passes.Options{}).Names()

	runChaos := func() (*Batch, faults.Counts) {
		in := faults.MustNew(chaosPlan(seed))
		b, err := Run(reqsFor(srcs), Options{
			Workers:   8,
			FaultHook: in.Hook(),
			Metrics:   NewMetrics(), // private registry: exact counter math
		})
		if err != nil {
			t.Fatal(err)
		}
		return b, in.Counts()
	}
	b, fired := runChaos()

	// Precompute the expected outcome of every request from the plan alone.
	oracle := faults.MustNew(chaosPlan(seed))
	var wantCounts faults.Counts
	var wantPanics, wantFallbacks, wantVerified, wantRejected int64
	erred, degraded := 0, 0
	for i := range srcs {
		o := expectOutcome(oracle, passNames, Request{}.name(i))
		wantCounts = addCounts(wantCounts, o.counts)
		wantPanics += o.panics
		wantFallbacks += o.fallbacks
		wantVerified += o.verified
		wantRejected += o.rejected
		lr := b.Loops[i]
		if lr.Index != i {
			t.Fatalf("result %d has Index %d", i, lr.Index)
		}
		if (lr.Err != nil) != o.err {
			t.Errorf("%s: err = %v, plan predicts err=%v", lr.Name, lr.Err, o.err)
		}
		if lr.Err == nil && lr.Degraded() != o.degraded {
			t.Errorf("%s: degraded = %v, plan predicts %v", lr.Name, lr.Degraded(), o.degraded)
		}
		if o.err {
			erred++
		} else if o.degraded {
			degraded++
		}
		if lr.Err != nil {
			continue
		}
		// Isolation and fallback correctness: whatever happened to the
		// neighbours, a returned result carries verified schedules.
		for _, mr := range lr.Machines {
			if err := mr.Sync.Validate(); err != nil {
				t.Errorf("%s: invalid sync schedule under chaos: %v", lr.Name, err)
			}
			if err := mr.List.Validate(); err != nil {
				t.Errorf("%s: invalid list schedule under chaos: %v", lr.Name, err)
			}
			if mr.Degraded && mr.DegradedReason == "" {
				t.Errorf("%s: degraded without a reason", lr.Name)
			}
			if !mr.Degraded && mr.DegradedReason != "" {
				t.Errorf("%s: reason %q without Degraded", lr.Name, mr.DegradedReason)
			}
		}
	}
	if erred == 0 || degraded == 0 || wantCounts.Total() == 0 {
		t.Fatalf("chaos plan too tame for seed %d: %d erred, %d degraded, %d faults", seed, erred, degraded, wantCounts.Total())
	}
	if fired != wantCounts {
		t.Errorf("fired faults = %s, plan predicts %s", fired, wantCounts)
	}
	if b.Stats.Panics != wantPanics {
		t.Errorf("panics counter = %d, plan predicts %d", b.Stats.Panics, wantPanics)
	}
	if b.Stats.Fallbacks != wantFallbacks {
		t.Errorf("fallbacks counter = %d, plan predicts %d", b.Stats.Fallbacks, wantFallbacks)
	}
	if b.Stats.Verified != wantVerified {
		t.Errorf("verified counter = %d, plan predicts %d", b.Stats.Verified, wantVerified)
	}
	if b.Stats.Rejected != wantRejected {
		t.Errorf("rejected counter = %d, plan predicts %d", b.Stats.Rejected, wantRejected)
	}
	if wantRejected == 0 {
		t.Errorf("chaos plan fired no verify-stage faults for seed %d: rejection path untested", seed)
	}
	if b.Stats.Timeouts != 0 {
		t.Errorf("timeouts counter = %d without any deadline", b.Stats.Timeouts)
	}

	// Same seed, second run: identical fault pattern and counters,
	// independent of goroutine interleaving.
	b2, fired2 := runChaos()
	if fired2 != fired {
		t.Errorf("replay fired %s, first run fired %s", fired2, fired)
	}
	if b2.Stats.Panics != b.Stats.Panics || b2.Stats.Fallbacks != b.Stats.Fallbacks {
		t.Errorf("replay counters %d/%d diverge from %d/%d",
			b2.Stats.Panics, b2.Stats.Fallbacks, b.Stats.Panics, b.Stats.Fallbacks)
	}
	for i := range b.Loops {
		if (b.Loops[i].Err != nil) != (b2.Loops[i].Err != nil) || b.Loops[i].Degraded() != b2.Loops[i].Degraded() {
			t.Errorf("%s: replay outcome diverges", b.Loops[i].Name)
		}
	}
}

// TestChaosWithCache re-runs the chaos batch with a shared cache attached.
// Cache hits are interleaving-dependent (first-writer-wins), so exact
// counter math is off the table; the structural invariants are not.
func TestChaosWithCache(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 60
	}
	in := faults.MustNew(chaosPlan(chaosSeed(t)))
	cache := NewCache()
	b, err := Run(reqsFor(corpus(n)), Options{
		Workers:   8,
		Cache:     cache,
		FaultHook: in.Hook(),
		Metrics:   NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free, cache-free reference run: each chaos result must carry its
	// own request's compilation. A cache-faulted recompute that published (or
	// adopted) another request's entry would validate fine but describe the
	// wrong loop — compare DFG fingerprints per index to catch it.
	ref, err := Run(reqsFor(corpus(n)), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, lr := range b.Loops {
		if lr.Index != i {
			t.Fatalf("result %d has Index %d", i, lr.Index)
		}
		if lr.Err != nil {
			continue
		}
		if want := ref.Loops[i].Graph.Fingerprint(); lr.Graph.Fingerprint() != want {
			t.Errorf("%s: result carries another request's compilation (graph fingerprint mismatch)", lr.Name)
		}
		for _, mr := range lr.Machines {
			if err := mr.Sync.Validate(); err != nil {
				t.Errorf("%s: invalid sync schedule under cached chaos: %v", lr.Name, err)
			}
			if mr.Degraded && mr.DegradedReason == "" {
				t.Errorf("%s: degraded without a reason", lr.Name)
			}
		}
	}
	// A clean batch over the same cache afterwards: corrupted probes dropped
	// entries rather than poisoning them, so everything must still validate
	// and nothing comes back degraded.
	clean, err := Run(reqsFor(corpus(n)), Options{Workers: 8, Cache: cache, Metrics: NewMetrics()})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range clean.Loops {
		if lr.Err != nil {
			t.Fatalf("%s failed on a clean run over the chaos cache: %v", lr.Name, lr.Err)
		}
		if lr.Degraded() {
			t.Errorf("%s degraded on a clean run: degraded entries leaked into the cache", lr.Name)
		}
		for _, mr := range lr.Machines {
			if err := mr.Sync.Validate(); err != nil {
				t.Errorf("%s: cache served an invalid schedule: %v", lr.Name, err)
			}
		}
	}
}
