// Package pipeline is the batch scheduling service over many DOACROSS
// loops: it fans compile → schedule (list/sync/best) → simulate out across a
// worker pool, deduplicates repeated scheduling problems through a sharded
// content-addressed schedule cache (key = DFG fingerprint + machine
// configuration + scheduler options, built in internal/dfg), and records
// per-stage latency and cache traffic in an embedded metrics registry.
//
// Results are returned in request order and are independent of the worker
// count: every per-loop computation is a pure function of the loop source
// and the options, and cached values are bound first-writer-wins, so a batch
// run with 1 worker and with 8 workers yields identical numbers.
package pipeline

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/diag"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/model"
	"doacross/internal/passes"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// Request is one loop to schedule. Exactly one of Source and Loop must be
// set; Loop wins when both are.
type Request struct {
	// Name labels the loop in results (defaults to "loop<index>").
	Name string
	// Source is unparsed loop source.
	Source string
	// Loop is an already parsed loop.
	Loop *lang.Loop
	// N overrides Options.N for this request (0 = use the batch default).
	N int
}

// Options configures a batch run. The zero value schedules on the paper's
// 4-issue machine with the program-order list baseline, n=100, GOMAXPROCS
// workers, no cache and a private metrics registry.
type Options struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// Machines are the configurations to schedule each loop on; empty means
	// the paper's 4-issue(#FU=1) machine.
	Machines []dlx.Config
	// N is the default trip count for simulation (0 = 100, the paper's).
	N int
	// Window is the signal hardware window passed to the simulator
	// (0 = unbounded).
	Window int
	// Baseline selects the list-scheduling priority.
	Baseline core.ListPriority
	// Sync holds the ablation knobs of the synchronization-aware scheduler.
	Sync core.SyncOptions
	// Best additionally builds the never-degrades Best schedule.
	Best bool
	// Compile configures the compilation pass pipeline (optional unroll/
	// migrate passes, if-conversion, flow-only synchronization, artifact
	// dumps). Tracer is overridden: per-pass latencies always land in the
	// batch's metrics registry.
	Compile passes.Options
	// Cache, when non-nil, memoizes all three stages across loops and
	// batches: compilations by source text, schedules by DFG fingerprint +
	// machine + scheduler options, and timings additionally by trip count
	// and window. Sweeping trip counts or machines over a fixed corpus
	// recompiles and reschedules nothing.
	Cache *Cache
	// Metrics, when non-nil, receives this batch's counters (pass one
	// registry to several batches to aggregate). Otherwise a private
	// registry is used and returned in Batch.Stats.
	Metrics *Metrics
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o Options) machines() []dlx.Config {
	if len(o.Machines) > 0 {
		return o.Machines
	}
	return []dlx.Config{dlx.Standard(4, 1)}
}

// salt renders the scheduling-relevant options into the cache-key salt.
func (o Options) salt() string {
	return fmt.Sprintf("base=%d sync=%v/%v/%v/%v best=%v", int(o.Baseline),
		o.Sync.NoPairArcs, o.Sync.NoLazyWaits, o.Sync.NoSPPriority, o.Sync.AscendingSP, o.Best)
}

// compileSalt renders the compile-relevant options into the compile-memo
// key: pass selection and artifact dumps change what a compilation produces.
func (o Options) compileSalt() string {
	return fmt.Sprintf("u=%d mig=%v noif=%v flow=%v dump=%s", o.Compile.Unroll,
		o.Compile.Migrate, o.Compile.NoIfConvert, o.Compile.FlowOnly,
		strings.Join(o.Compile.Dump, ","))
}

// MachineResult is one loop's outcome on one machine configuration.
type MachineResult struct {
	// Machine is the configuration name.
	Machine string
	// Key is the schedule-cache key of this scheduling problem.
	Key dfg.Fingerprint
	// List and Sync are the baseline and synchronization-aware schedules;
	// Best is the never-degrades pick (nil unless Options.Best).
	List, Sync, Best *core.Schedule
	// ListTime, SyncTime and BestTime are simulated parallel execution
	// times for the loop's trip count.
	ListTime, SyncTime, BestTime int
	// ListStalls and SyncStalls are the simulators' stall-cycle counts.
	ListStalls, SyncStalls int
	// ListLBD and SyncLBD count synchronization pairs left lexically
	// backward by each schedule.
	ListLBD, SyncLBD int
	// Improvement is the paper's Table 3 percentage, list vs sync.
	Improvement float64
	// CacheHit reports whether the schedules came from the cache.
	CacheHit bool
}

// LoopResult is one request's outcome.
type LoopResult struct {
	// Index is the request's position in the batch.
	Index int
	// Name labels the loop.
	Name string
	// Err is the first stage error; the remaining fields are partial when
	// it is non-nil.
	Err error
	// N is the trip count the loop was simulated with.
	N int
	// Compiled pipeline artifacts.
	Loop     *lang.Loop
	Analysis *dep.Analysis
	SyncLoop *syncop.Loop
	Prog     *tac.Program
	Graph    *dfg.Graph
	// Trace is the pass manager's record of this loop's compilation:
	// per-pass timings, dumped artifacts (Options.Compile.Dump) and
	// positioned diagnostics. Shared with other requests that hit the same
	// compile-memo entry; treat as read-only.
	Trace *passes.Trace
	// Diags are the compile diagnostics (warnings, and the error when
	// Err != nil) with source positions.
	Diags diag.List
	// Machines holds one result per Options.Machines entry, in order.
	Machines []MachineResult
}

// DoacrossSource renders the synchronized loop.
func (r *LoopResult) DoacrossSource() string { return r.SyncLoop.String() }

// Listing renders the compiled three-address code.
func (r *LoopResult) Listing() string { return tac.Listing(r.Prog.Instrs) }

// GraphInfo summarizes the data-flow graph partition.
func (r *LoopResult) GraphInfo() string { return r.Graph.SyncInfo() }

// Batch is the result of one pipeline run.
type Batch struct {
	// Loops holds per-request results in request order.
	Loops []LoopResult
	// Stats is the metrics snapshot taken when the batch finished. With a
	// shared Options.Metrics it includes earlier batches' counts.
	Stats Stats
}

// FirstErr returns the first per-loop error, if any.
func (b *Batch) FirstErr() error {
	for i := range b.Loops {
		if err := b.Loops[i].Err; err != nil {
			return fmt.Errorf("%s: %w", b.Loops[i].Name, err)
		}
	}
	return nil
}

// compileEntry is the cached product of the compilation passes for one
// source text.
type compileEntry struct {
	loop     *lang.Loop
	analysis *dep.Analysis
	syncLoop *syncop.Loop
	prog     *tac.Program
	graph    *dfg.Graph
	trace    *passes.Trace
	diags    diag.List
}

// sourceKey addresses the compile memo: a hash of the loop's source text and
// the compile options in a key space disjoint from ConfigKey (distinct
// prefix).
func sourceKey(src, salt string) dfg.Fingerprint {
	return dfg.Fingerprint(sha256.Sum256([]byte("compile\x00" + salt + "\x00" + src)))
}

// schedEntry is the cached product of StageSchedule for one ConfigKey.
type schedEntry struct {
	list, sync, best *core.Schedule
}

// timeEntry is the cached product of StageSimulate for one ConfigKey+n.
type timeEntry struct {
	listTime, syncTime, bestTime int
	listStalls, syncStalls       int
	listLBD, syncLBD             int
}

// Run schedules every request and returns per-loop results plus aggregate
// stats. Per-loop failures land in LoopResult.Err (see Batch.FirstErr); Run
// itself only fails on unusable options.
func Run(reqs []Request, opt Options) (*Batch, error) {
	machines := opt.machines()
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	metrics := opt.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}
	batch := &Batch{Loops: make([]LoopResult, len(reqs))}
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opt.workers()
	if workers > len(reqs) && len(reqs) > 0 {
		workers = len(reqs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				batch.Loops[i] = runOne(i, reqs[i], machines, opt, metrics)
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	batch.Stats = metrics.Stats()
	return batch, nil
}

// runOne pushes one request through compile → schedule → simulate.
func runOne(idx int, req Request, machines []dlx.Config, opt Options, metrics *Metrics) LoopResult {
	res := LoopResult{Index: idx, Name: req.Name, N: req.N}
	if res.Name == "" {
		res.Name = fmt.Sprintf("loop%d", idx)
	}
	if res.N == 0 {
		res.N = opt.n()
	}

	// Compile through the pass manager, via the content-addressed memo when
	// a cache is attached: identical source text (or identically rendering
	// parsed loops) shares one immutable compilation, trace included.
	var srcKey dfg.Fingerprint
	var compiled *compileEntry
	if req.Loop == nil && req.Source == "" {
		res.Err = fmt.Errorf("request has neither Source nor Loop")
		metrics.Error(passes.PassParse)
		return res
	}
	if opt.Cache != nil {
		src := req.Source
		if req.Loop != nil {
			src = req.Loop.String()
		}
		srcKey = sourceKey(src, opt.compileSalt())
		if v, ok := opt.Cache.Get(srcKey); ok {
			compiled = v.(*compileEntry)
			metrics.CacheHit()
		} else {
			metrics.CacheMiss()
		}
	}
	if compiled == nil {
		popts := opt.Compile
		popts.Tracer = metrics
		pl := passes.New(popts)
		var ctx *passes.Context
		if req.Loop != nil {
			ctx, res.Err = pl.RunLoop(req.Loop)
		} else {
			ctx, res.Err = pl.RunSource(req.Source)
		}
		res.Trace = ctx.Trace
		res.Diags = ctx.Diags
		if res.Err != nil {
			return res
		}
		compiled = &compileEntry{
			loop: ctx.Loop, analysis: ctx.Analysis, syncLoop: ctx.Sync,
			prog: ctx.Code, graph: ctx.Graph, trace: ctx.Trace, diags: ctx.Diags,
		}
		if opt.Cache != nil {
			v, _ := opt.Cache.Put(srcKey, compiled)
			compiled = v.(*compileEntry)
		}
	}
	res.Loop = compiled.loop
	res.Analysis = compiled.analysis
	res.SyncLoop = compiled.syncLoop
	res.Prog = compiled.prog
	res.Graph = compiled.graph
	res.Trace = compiled.trace
	res.Diags = compiled.diags

	fp := res.Graph.Fingerprint()
	salt := opt.salt()
	res.Machines = make([]MachineResult, len(machines))
	for k, cfg := range machines {
		mr := &res.Machines[k]
		mr.Machine = cfg.Name
		mr.Key = dfg.KeyFrom(fp, cfg, "sched", salt)

		// Schedule, through the cache when one is attached.
		var entry *schedEntry
		if opt.Cache != nil {
			if v, ok := opt.Cache.Get(mr.Key); ok {
				entry = v.(*schedEntry)
				mr.CacheHit = true
				metrics.CacheHit()
			}
		}
		if entry == nil {
			if opt.Cache != nil {
				metrics.CacheMiss()
			}
			e := &schedEntry{}
			res.Err = metrics.timed(StageSchedule, func() error {
				var err error
				if e.list, err = core.List(res.Graph, cfg, opt.Baseline); err != nil {
					return err
				}
				if e.sync, err = core.SyncWithOptions(res.Graph, cfg, opt.Sync); err != nil {
					return err
				}
				if opt.Best {
					if e.best, err = core.Best(res.Graph, cfg); err != nil {
						return err
					}
				}
				return nil
			})
			if res.Err != nil {
				return res
			}
			entry = e
			if opt.Cache != nil {
				v, _ := opt.Cache.Put(mr.Key, entry)
				entry = v.(*schedEntry)
			}
		}
		mr.List, mr.Sync, mr.Best = entry.list, entry.sync, entry.best

		// Simulate; timings additionally key on trip count and window.
		var times *timeEntry
		timeKey := dfg.KeyFrom(fp, cfg, "time", salt, fmt.Sprintf("n=%d w=%d", res.N, opt.Window))
		if opt.Cache != nil {
			if v, ok := opt.Cache.Get(timeKey); ok {
				times = v.(*timeEntry)
				metrics.CacheHit()
			} else {
				metrics.CacheMiss()
			}
		}
		if times == nil {
			te := &timeEntry{}
			res.Err = metrics.timed(StageSimulate, func() error {
				simOpt := sim.Options{Lo: 1, Hi: res.N, Window: opt.Window}
				lt, err := sim.Time(entry.list, simOpt)
				if err != nil {
					return err
				}
				st, err := sim.Time(entry.sync, simOpt)
				if err != nil {
					return err
				}
				te.listTime, te.listStalls = lt.Total, lt.StallCycles
				te.syncTime, te.syncStalls = st.Total, st.StallCycles
				te.listLBD, te.syncLBD = entry.list.NumLBD(), entry.sync.NumLBD()
				if entry.best != nil {
					bt, err := sim.Time(entry.best, simOpt)
					if err != nil {
						return err
					}
					te.bestTime = bt.Total
				}
				return nil
			})
			if res.Err != nil {
				return res
			}
			times = te
			if opt.Cache != nil {
				v, _ := opt.Cache.Put(timeKey, times)
				times = v.(*timeEntry)
			}
		}
		mr.ListTime, mr.SyncTime, mr.BestTime = times.listTime, times.syncTime, times.bestTime
		mr.ListStalls, mr.SyncStalls = times.listStalls, times.syncStalls
		mr.ListLBD, mr.SyncLBD = times.listLBD, times.syncLBD
		mr.Improvement = model.Speedup(times.listTime, times.syncTime)
	}
	return res
}
