// Package pipeline is the batch scheduling service over many DOACROSS
// loops: it fans compile → schedule (list/sync/best) → simulate out across a
// worker pool, deduplicates repeated scheduling problems through a sharded
// content-addressed schedule cache (key = DFG fingerprint + machine
// configuration + scheduler options, built in internal/dfg), and records
// per-stage latency and cache traffic in an embedded metrics registry.
//
// Results are returned in request order and are independent of the worker
// count: every per-loop computation is a pure function of the loop source
// and the options, and cached values are bound first-writer-wins, so a batch
// run with 1 worker and with 8 workers yields identical numbers.
//
// The service is hardened against misbehaving inputs and stages:
//
//   - Cancellation: RunContext threads a context through the worker pool,
//     checked between the compile, schedule and simulate stages;
//     Options.Deadline bounds the batch and Options.RequestTimeout each
//     request. A cancelled batch still returns every result in request
//     order, with per-request errors on the requests that were cut off.
//   - Panic isolation: a panic in any stage (or compilation pass) is
//     recovered into a structured diagnostic carrying the stage, the request
//     name and a stack digest; one poisoned loop never kills the batch.
//   - Graceful degradation: when the synchronization-aware scheduler fails —
//     an error, a panic, or a schedule rejected by Validate — the request is
//     served by the program-order list schedule, which the paper guarantees
//     is always a correct (if slower) answer. The fallback is verified with
//     Validate before it is returned and the result is flagged Degraded with
//     the reason.
//   - Independent verification: every freshly built schedule — organic or
//     fallback — passes through internal/check before it is served or
//     published to the cache. The checker re-derives the dependence edges
//     from the compiled code and re-checks the paper's synchronization
//     conditions, resource feasibility and deadlock freedom without sharing
//     code with the schedulers; cache hits therefore only ever serve
//     schedules that already passed. A rejected schedule degrades onto the
//     fallback exactly like a scheduler panic; fresh compilations
//     additionally run the synchronization linter (LoopResult.Lint).
//   - Fault injection: Options.FaultHook (see internal/faults) is probed at
//     every stage boundary so chaos tests can drive each failure path
//     deterministically.
package pipeline

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/diag"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/model"
	"doacross/internal/obs"
	"doacross/internal/passes"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// Request is one loop to schedule. Exactly one of Source and Loop must be
// set; Loop wins when both are.
type Request struct {
	// Name labels the loop in results (defaults to "loop<index>").
	Name string
	// Source is unparsed loop source.
	Source string
	// Loop is an already parsed loop.
	Loop *lang.Loop
	// N overrides Options.N for this request (0 = use the batch default).
	N int
	// ID is an optional correlation ID (e.g. the daemon's X-Request-Id). It
	// is attached to the request's observer span so service logs, span
	// trees and flight-recorder dumps can be joined on it; it never enters
	// cache or coalescing keys.
	ID string
}

// name returns the request's label in results and fault probes.
func (r Request) name(idx int) string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("loop%d", idx)
}

// Options configures a batch run. The zero value schedules on the paper's
// 4-issue machine with the program-order list baseline, n=100, GOMAXPROCS
// workers, no cache, no deadline and a private metrics registry.
type Options struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// Machines are the configurations to schedule each loop on; empty means
	// the paper's 4-issue(#FU=1) machine.
	Machines []dlx.Config
	// N is the default trip count for simulation (0 = 100, the paper's).
	N int
	// Window is the signal hardware window passed to the simulator
	// (0 = unbounded).
	Window int
	// Baseline selects the list-scheduling priority.
	Baseline core.ListPriority
	// Sync holds the ablation knobs of the synchronization-aware scheduler.
	Sync core.SyncOptions
	// Best additionally builds the never-degrades Best schedule.
	Best bool
	// Compile configures the compilation pass pipeline (optional unroll/
	// migrate passes, if-conversion, flow-only synchronization, artifact
	// dumps). Tracer is overridden: per-pass latencies always land in the
	// batch's metrics registry.
	//
	// Compile.Backend additionally selects the scheduling backend that
	// serves the synchronization-aware slot of every result ("" = "sync",
	// the paper's heuristic; see passes.BackendNames). The "exact" backend
	// evaluates its objective at each request's trip count unless
	// Compile.Exact.N pins one, and its budget-exhausted (non-optimal)
	// results are never published to the schedule cache.
	Compile passes.Options
	// Cache, when non-nil, memoizes all three stages across loops and
	// batches: compilations by source text, schedules by DFG fingerprint +
	// machine + scheduler options, and timings additionally by trip count
	// and window. Sweeping trip counts or machines over a fixed corpus
	// recompiles and reschedules nothing. Degraded (fallback) results are
	// never published to the cache.
	Cache *Cache
	// Disk, when non-nil, is the crash-safe persistent tier under Cache:
	// every fresh, verified, non-degraded, cacheable result is also written
	// through to it (atomic rename + checksum, see DiskStore), and LoadDisk
	// restores it into a Cache on startup so restarts come up warm. Disk
	// write failures never fail a request — they are counted by the store.
	// Requires Cache to be useful, but is consulted on no hot path: reads
	// happen only in LoadDisk.
	Disk *DiskStore
	// Metrics, when non-nil, receives this batch's counters (pass one
	// registry to several batches to aggregate). Otherwise a private
	// registry is used and returned in Batch.Stats.
	Metrics *Metrics
	// Deadline bounds the whole batch (0 = none). When it expires, requests
	// not yet finished fail with context.DeadlineExceeded errors; completed
	// results are returned as usual, in request order.
	Deadline time.Duration
	// RequestTimeout bounds each request (0 = none), checked between the
	// compile, schedule and simulate stages.
	RequestTimeout time.Duration
	// FaultHook, when non-nil, is probed with (stage, request name) at the
	// start of the "compile", "schedule", "check" and "simulate" stages, once
	// per request at "cache" consultation, and before every compilation pass
	// (with the pass name as the stage). A returned error fails the stage —
	// subject to the same fallback rules as organic failures — and a "cache"
	// error drops the cached entries for the request (forcing recompute). A
	// hook panic is isolated like any stage panic. internal/faults provides
	// a seeded deterministic implementation; production batches leave it
	// nil.
	FaultHook func(stage, name string) error
	// Utilization additionally traces every simulation with the machine-
	// level tracer (sim.Tracer) and attaches the derived utilization
	// reports (per-FU occupancy, issue-slot efficiency, stall-cause
	// histogram) to each MachineResult. The tracer's attribution books are
	// verified against the timing counters on every traced run. Cached
	// timings carry whatever the original run recorded — a hit from an
	// untraced run has nil reports (best effort, like span observation).
	Utilization bool
	// Observer, when non-nil, records a span per batch, request, stage and
	// compilation pass into its bounded ring buffer (see internal/obs),
	// reconstructible as a batch → request → stage → pass tree and
	// exportable as a Chrome trace. A nil Observer costs one nil check per
	// would-be span.
	Observer *obs.Recorder
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) n() int {
	if o.N > 0 {
		return o.N
	}
	return 100
}

func (o Options) machines() []dlx.Config {
	if len(o.Machines) > 0 {
		return o.Machines
	}
	return []dlx.Config{dlx.Standard(4, 1)}
}

// salt renders the scheduling-relevant options into the cache-key salt. The
// backend name is part of it: the same DFG on the same machine schedules
// differently under different backends, and cached entries must never cross.
func (o Options) salt() string {
	return fmt.Sprintf("base=%d sync=%v/%v/%v/%v best=%v backend=%s", int(o.Baseline),
		o.Sync.NoPairArcs, o.Sync.NoLazyWaits, o.Sync.NoSPPriority, o.Sync.AscendingSP, o.Best,
		o.backendName())
}

// backendName normalizes Compile.Backend ("" is the historical "sync").
func (o Options) backendName() string {
	if o.Compile.Backend == "" {
		return "sync"
	}
	return o.Compile.Backend
}

// backendScheduler resolves the configured scheduling backend for a request
// simulated with trip count n. The exact backend's objective T = (n/d)(i-j)+l
// depends on the trip count, so unless Compile.Exact.N pins one it is
// evaluated at the trip count the result will be simulated (and audited) at.
func (o Options) backendScheduler(n int) (core.Scheduler, error) {
	bc := passes.BackendConfig{Sync: o.Sync, Exact: o.Compile.Exact}
	if bc.Exact.N == 0 {
		bc.Exact.N = n
	}
	return passes.Backend(o.Compile.Backend, bc)
}

// exactSalt returns the extra cache-key salt of exact-backend scheduling
// problems ("" for every other backend): the objective's trip count changes
// which schedule is optimal, so it must split the key space. The node budget
// is deliberately NOT part of the key — only proven-optimal results are ever
// published, and those are budget-invariant (a completed search returns the
// same schedule under any budget large enough to complete).
func (o Options) exactSalt(n int) string {
	if o.backendName() != "exact" {
		return ""
	}
	en := o.Compile.Exact.N
	if en == 0 {
		en = n
	}
	return fmt.Sprintf("exactN=%d", en)
}

// compileSalt renders the compile-relevant options into the compile-memo
// key: pass selection and artifact dumps change what a compilation produces.
func (o Options) compileSalt() string {
	return fmt.Sprintf("u=%d mig=%v noif=%v flow=%v dump=%s", o.Compile.Unroll,
		o.Compile.Migrate, o.Compile.NoIfConvert, o.Compile.FlowOnly,
		strings.Join(o.Compile.Dump, ","))
}

// Fault-probe stage names (the compilation passes are probed under their own
// pass names). These mirror internal/faults' stage constants without
// importing it: the hook signature is plain func values in both directions.
const (
	stageCompile = "compile"
	stageCache   = "cache"
)

// MachineResult is one loop's outcome on one machine configuration.
type MachineResult struct {
	// Machine is the configuration name.
	Machine string
	// Key is the schedule-cache key of this scheduling problem.
	Key dfg.Fingerprint
	// List and Sync are the baseline and synchronization-aware schedules;
	// Best is the never-degrades pick (nil unless Options.Best).
	List, Sync, Best *core.Schedule
	// ListTime, SyncTime and BestTime are simulated parallel execution
	// times for the loop's trip count.
	ListTime, SyncTime, BestTime int
	// ListStalls and SyncStalls are the simulators' stall-cycle counts.
	ListStalls, SyncStalls int
	// ListLBD and SyncLBD count synchronization pairs left lexically
	// backward by each schedule; ListLFD and SyncLFD the pairs placed
	// lexically forward (together they partition the sync arcs).
	ListLBD, SyncLBD int
	ListLFD, SyncLFD int
	// ListSignals and SyncSignals count Send_Signal issues during each
	// schedule's simulation (paper-level synchronization traffic).
	ListSignals, SyncSignals int
	// Improvement is the paper's Table 3 percentage, list vs sync.
	Improvement float64
	// Backend names the scheduler that produced the Sync slot ("sync" unless
	// Options.Compile.Backend selected another; see passes.Backend).
	Backend string
	// PredictedT is the backend's closed-form objective T = (n/d)(i-j)+l for
	// the served Sync schedule at this request's trip count.
	PredictedT int
	// Optimal reports that the backend proved PredictedT optimal (always
	// false for the heuristic backends, which claim nothing). A
	// budget-exhausted exact result is explicitly non-optimal and is never
	// published to the schedule cache.
	Optimal bool
	// LowerBound is the backend's proven lower bound on the objective (0 when
	// the backend proves none; equals PredictedT when Optimal).
	LowerBound int
	// SearchNodes counts branch-and-bound nodes expanded by the exact
	// backend (0 for heuristics).
	SearchNodes int64
	// BackendNote carries the backend's diagnostic, e.g. the exact solver's
	// budget-exhaustion note ("" when the result is clean).
	BackendNote string
	// CacheHit reports whether the schedules came from the cache.
	CacheHit bool
	// ListUtil and SyncUtil are the machine-level utilization reports of
	// the traced simulations (nil unless Options.Utilization, and nil on
	// cache hits recorded by untraced runs).
	ListUtil, SyncUtil *sim.Utilization
	// Degraded reports that the synchronization-aware schedule (and Best)
	// was replaced by the verified program-order list fallback after a
	// scheduler or simulator failure; Sync then holds the fallback, which
	// passed Schedule.Validate before being returned.
	Degraded bool
	// DegradedReason is the failure that triggered the fallback ("" unless
	// Degraded).
	DegradedReason string
}

// LoopResult is one request's outcome.
type LoopResult struct {
	// Index is the request's position in the batch.
	Index int
	// Name labels the loop.
	Name string
	// Err is the first stage error; the remaining fields are partial when
	// it is non-nil.
	Err error
	// N is the trip count the loop was simulated with.
	N int
	// Compiled pipeline artifacts.
	Loop     *lang.Loop
	Analysis *dep.Analysis
	SyncLoop *syncop.Loop
	Prog     *tac.Program
	Graph    *dfg.Graph
	// Trace is the pass manager's record of this loop's compilation:
	// per-pass timings, dumped artifacts (Options.Compile.Dump) and
	// positioned diagnostics. Shared with other requests that hit the same
	// compile-memo entry; treat as read-only.
	Trace *passes.Trace
	// Diags are the compile diagnostics (warnings, and the error when
	// Err != nil) with source positions.
	Diags diag.List
	// Lint are the synchronization-linter findings over the compiled loop
	// (internal/check): redundant waits, dead sends, suspicious distances.
	// Purely advisory here — lint errors fail the compilation only under
	// Options.Compile.Verify.
	Lint diag.List
	// Machines holds one result per Options.Machines entry, in order.
	Machines []MachineResult
}

// DoacrossSource renders the synchronized loop.
func (r *LoopResult) DoacrossSource() string { return r.SyncLoop.String() }

// Listing renders the compiled three-address code.
func (r *LoopResult) Listing() string { return tac.Listing(r.Prog.Instrs) }

// GraphInfo summarizes the data-flow graph partition.
func (r *LoopResult) GraphInfo() string { return r.Graph.SyncInfo() }

// Degraded reports whether any machine's result was served by the verified
// program-order fallback schedule.
func (r *LoopResult) Degraded() bool {
	for i := range r.Machines {
		if r.Machines[i].Degraded {
			return true
		}
	}
	return false
}

// Batch is the result of one pipeline run.
type Batch struct {
	// Loops holds per-request results in request order.
	Loops []LoopResult
	// Stats is the metrics snapshot taken when the batch finished. With a
	// shared Options.Metrics it includes earlier batches' counts.
	Stats Stats
}

// FirstErr returns the first per-loop error, if any.
func (b *Batch) FirstErr() error {
	for i := range b.Loops {
		if err := b.Loops[i].Err; err != nil {
			return fmt.Errorf("%s: %w", b.Loops[i].Name, err)
		}
	}
	return nil
}

// compileEntry is the cached product of the compilation passes for one
// source text.
type compileEntry struct {
	loop     *lang.Loop
	analysis *dep.Analysis
	syncLoop *syncop.Loop
	prog     *tac.Program
	graph    *dfg.Graph
	trace    *passes.Trace
	diags    diag.List
	lint     diag.List
}

// sourceKey addresses the compile memo: a hash of the loop's source text and
// the compile options in a key space disjoint from ConfigKey (distinct
// prefix).
func sourceKey(src, salt string) dfg.Fingerprint {
	return dfg.Fingerprint(sha256.Sum256([]byte("compile\x00" + salt + "\x00" + src)))
}

// schedEntry is the cached product of StageSchedule for one ConfigKey. The
// outcome fields mirror the backend's evidence so cache hits restore it;
// entries with optimal=false under the exact backend are never published
// (see the verify stage), so every cached exact entry carries a proof.
type schedEntry struct {
	list, sync, best *core.Schedule
	backend          string
	predictedT       int
	// predictedAtN is the trip count predictedT was computed for when the
	// prediction is the closed-form model of a heuristic schedule (exact
	// entries carry a backend objective and are cached per trip count).
	// Heuristic entries are shared across trip counts, so a cache hit at a
	// different N must re-evaluate the model rather than serve the
	// producer's number.
	predictedAtN int
	optimal      bool
	lowerBound   int
	searchNodes  int64
	note         string
}

// fillOutcome copies a schedule entry's backend evidence into the result,
// re-deriving the closed-form prediction at the request's own trip count
// when the entry was produced for a different one.
func (e *schedEntry) fillOutcome(mr *MachineResult, n int) {
	mr.Backend = e.backend
	mr.PredictedT = e.predictedT
	if e.predictedAtN != 0 && e.predictedAtN != n && e.sync != nil {
		mr.PredictedT = model.Predict(e.sync, n)
	}
	mr.Optimal = e.optimal
	mr.LowerBound = e.lowerBound
	mr.SearchNodes = e.searchNodes
	mr.BackendNote = e.note
}

// cacheable reports whether a verified, non-degraded entry may be published
// to the schedule cache. Budget-exhausted (non-optimal) exact results never
// are: a bigger budget could still improve them, and a cache hit would
// launder "budget exhausted" into a clean-looking proven answer.
func (e *schedEntry) cacheable() bool {
	return e.backend != "exact" || e.optimal
}

// timeEntry is the cached product of StageSimulate for one ConfigKey+n.
type timeEntry struct {
	listTime, syncTime, bestTime int
	listStalls, syncStalls       int
	listLBD, syncLBD             int
	listLFD, syncLFD             int
	listSignals, syncSignals     int
	// Machine-level utilization reports, recorded only when the batch ran
	// with Options.Utilization (nil otherwise; a cache hit serves whatever
	// the recording run kept).
	listUtil, syncUtil *sim.Utilization
}

// Run schedules every request and returns per-loop results plus aggregate
// stats. Per-loop failures land in LoopResult.Err (see Batch.FirstErr); Run
// itself only fails on unusable options.
func Run(reqs []Request, opt Options) (*Batch, error) {
	return RunContext(context.Background(), reqs, opt)
}

// RunContext is Run under a cancellation context, threaded through the
// worker pool and checked between the compile, schedule and simulate stages
// of every request. Options.Deadline additionally bounds the batch and
// Options.RequestTimeout each request. When the context expires, the
// requests cut off fail individually with the context's error — results are
// still returned for every request, in request order.
func RunContext(ctx context.Context, reqs []Request, opt Options) (*Batch, error) {
	machines := opt.machines()
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	// Fail fast on an unknown backend name, before any compilation work.
	if _, err := opt.backendScheduler(opt.n()); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	metrics := opt.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}
	metrics.AttachCache(opt.Cache)
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	batch := &Batch{Loops: make([]LoopResult, len(reqs))}
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opt.workers()
	if workers > len(reqs) && len(reqs) > 0 {
		workers = len(reqs)
	}
	bspan := opt.Observer.Start(obs.KindBatch, "batch", obs.Span{})
	metrics.QueueAdd(int64(len(reqs)))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scheduler scratch per worker: scheduling cache misses reuse
			// its buffers across requests (results are cloned before they are
			// published, so entries never alias scratch storage).
			sc := core.NewScratch()
			for i := range jobs {
				metrics.QueueAdd(-1)
				metrics.WorkerStart()
				batch.Loops[i] = runOne(ctx, i, reqs[i], machines, opt, sc, metrics, bspan)
				metrics.WorkerDone()
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// The batch is cut off: fail the requests not yet handed to a
			// worker (workers notice the same context between stages).
			for j := i; j < len(reqs); j++ {
				name := reqs[j].name(j)
				metrics.QueueAdd(-1)
				batch.Loops[j] = LoopResult{
					Index: j, Name: name, N: reqs[j].N,
					Err: ctxErr(ctx, name, metrics),
				}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	failed := 0
	for i := range batch.Loops {
		if batch.Loops[i].Err != nil {
			failed++
		}
	}
	opt.Observer.End(&bspan, nil,
		obs.I("requests", int64(len(reqs))),
		obs.I("workers", int64(workers)),
		obs.I("failed", int64(failed)))
	batch.Stats = metrics.Stats()
	return batch, nil
}

// ctxErr converts an expired context into a request error, counting the
// timeout. It must only be called when ctx.Err() != nil.
func ctxErr(ctx context.Context, name string, metrics *Metrics) error {
	metrics.Timeout()
	return fmt.Errorf("pipeline: request %s: %w", name, ctx.Err())
}

// safeStage runs f, recovering a panic into a structured diagnostic carrying
// the stage, the request name and a stack digest, and counting it — one
// poisoned loop never kills the batch.
func safeStage(stage, name string, metrics *Metrics, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			metrics.Panic()
			err = diag.FromPanic(stage, name, r, debug.Stack())
		}
	}()
	return f()
}

// fallbackSchedule builds and verifies the degraded answer: the
// program-order list schedule, which the paper guarantees is always correct
// (the Best schedule's never-worse baseline). It is validated before use so
// the service never returns an unverified schedule.
func fallbackSchedule(g *dfg.Graph, cfg dlx.Config) (*core.Schedule, error) {
	fb, err := core.List(g, cfg, core.ProgramOrder)
	if err != nil {
		return nil, err
	}
	if err := fb.Validate(); err != nil {
		return nil, fmt.Errorf("fallback schedule failed validation: %w", err)
	}
	return fb, nil
}

// validate rejects malformed requests before they reach the parser or the
// simulator, with a positioned diagnostic.
func (r Request) validate(idx int) *diag.Diagnostic {
	pos := diag.Pos{}
	if r.Loop != nil {
		pos = r.Loop.Pos()
	}
	if r.Loop == nil && r.Source == "" {
		return diag.Errorf("pipeline", pos, "request %s has neither Source nor Loop", r.name(idx))
	}
	if r.N < 0 {
		return diag.Errorf("pipeline", pos, "request %s: negative trip count N=%d", r.name(idx), r.N)
	}
	return nil
}

// runOne pushes one request through compile → schedule → simulate. sc is the
// calling worker's reusable scheduler scratch (never shared across
// goroutines).
func runOne(ctx context.Context, idx int, req Request, machines []dlx.Config, opt Options, sc *core.Scratch, metrics *Metrics, bspan obs.Span) (res LoopResult) {
	res = LoopResult{Index: idx, Name: req.name(idx), N: req.N}
	rspan := opt.Observer.Start(obs.KindRequest, res.Name, bspan)
	defer func() {
		if opt.Observer == nil {
			return
		}
		attrs := []obs.Attr{obs.I("index", int64(idx))}
		if req.ID != "" {
			attrs = append(attrs, obs.S("request_id", req.ID))
		}
		opt.Observer.End(&rspan, res.Err, attrs...)
	}()
	// Last line of defense: a panic that escapes the per-stage recovery
	// (e.g. in glue code or a fault hook outside a stage) fails this request
	// only.
	defer func() {
		if r := recover(); r != nil {
			metrics.Panic()
			res.Err = diag.FromPanic("pipeline", res.Name, r, debug.Stack())
		}
	}()
	if d := req.validate(idx); d != nil {
		res.Err = d
		return res
	}
	if res.N == 0 {
		res.N = opt.n()
	}
	if ctx.Err() != nil {
		res.Err = ctxErr(ctx, res.Name, metrics)
		return res
	}
	if opt.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.RequestTimeout)
		defer cancel()
	}
	probe := func(stage string) error {
		if opt.FaultHook == nil {
			return nil
		}
		return opt.FaultHook(stage, res.Name)
	}

	// Cache health: one probe per request decides whether this request may
	// read the shared cache (an injected "corrupt" fault drops the cached
	// entries, forcing a recompute; recomputed values are safe to publish).
	useCache := opt.Cache != nil
	if useCache {
		if err := probe(stageCache); err != nil {
			useCache = false
		}
	}

	// Compile through the pass manager, via the content-addressed memo when
	// a cache is attached: identical source text (or identically rendering
	// parsed loops) shares one immutable compilation, trace included. The
	// key is computed whenever a cache is attached — even when a cache fault
	// disabled reads for this request — so the recompute below publishes
	// under this request's own fingerprint, never the zero key.
	src := req.Source
	if req.Loop != nil && (opt.Cache != nil || opt.Disk != nil) {
		src = req.Loop.String()
	}
	var srcKey dfg.Fingerprint
	var compiled *compileEntry
	if opt.Cache != nil {
		srcKey = sourceKey(src, opt.compileSalt())
	}
	cspan := opt.Observer.Start(obs.KindStage, stageCompile, rspan)
	compileCached := false
	endCompile := func(err error) {
		if opt.Observer == nil {
			return
		}
		opt.Observer.End(&cspan, err, obs.B("cache_hit", compileCached))
	}
	if useCache {
		if v, ok := opt.Cache.Get(srcKey); ok {
			compiled = v.(*compileEntry)
			compileCached = true
			metrics.CacheHit()
		} else {
			metrics.CacheMiss()
		}
	}
	if compiled == nil {
		if err := probe(stageCompile); err != nil {
			res.Err = fmt.Errorf("pipeline: compile %s: %w", res.Name, err)
			endCompile(res.Err)
			return res
		}
		popts := opt.Compile
		popts.Tracer = metrics
		popts.FaultHook = opt.FaultHook
		popts.Request = res.Name
		popts.Observer = opt.Observer
		popts.ParentSpan = cspan
		pl := passes.New(popts)
		var pctx *passes.Context
		if req.Loop != nil {
			pctx, res.Err = pl.RunLoopCtx(ctx, req.Loop)
		} else {
			pctx, res.Err = pl.RunSourceCtx(ctx, req.Source)
		}
		res.Trace = pctx.Trace
		res.Diags = pctx.Diags
		if res.Err != nil {
			// A deadline/cancellation that fired inside the pass manager is
			// a timeout like any other: count it and wrap it consistently.
			if cerr := ctx.Err(); cerr != nil && errors.Is(res.Err, cerr) {
				res.Err = ctxErr(ctx, res.Name, metrics)
			}
			endCompile(res.Err)
			return res
		}
		// Lint the synchronization placement of every fresh compilation.
		// Under Compile.Verify the verify pass already ran the linter (and
		// failed on errors); otherwise the findings are advisory.
		lint := pctx.LintFindings
		if !opt.Compile.Verify {
			lint = append(check.Lint(pctx.Loop), check.LintSync(pctx.Sync)...)
		}
		metrics.LintFindings(int64(len(lint)))
		de, di, dc := pctx.Analysis.Counts()
		metrics.ObserveDeps(int64(de), int64(di), int64(dc))
		compiled = &compileEntry{
			loop: pctx.Loop, analysis: pctx.Analysis, syncLoop: pctx.Sync,
			prog: pctx.Code, graph: pctx.Graph, trace: pctx.Trace, diags: pctx.Diags,
			lint: lint,
		}
		if opt.Cache != nil {
			v, _ := opt.Cache.Put(srcKey, compiled)
			compiled = v.(*compileEntry)
		}
	}
	endCompile(nil)
	res.Loop = compiled.loop
	res.Analysis = compiled.analysis
	res.SyncLoop = compiled.syncLoop
	res.Prog = compiled.prog
	res.Graph = compiled.graph
	res.Trace = compiled.trace
	res.Diags = compiled.diags
	res.Lint = compiled.lint

	fp := res.Graph.Fingerprint()
	salt := opt.salt()
	exSalt := opt.exactSalt(res.N)
	// The trip-count/window salt of the time cache is constant per request;
	// format it once instead of per machine.
	nwSalt := fmt.Sprintf("n=%d w=%d", res.N, opt.Window)
	res.Machines = make([]MachineResult, len(machines))
	for k, cfg := range machines {
		if ctx.Err() != nil {
			res.Err = ctxErr(ctx, res.Name, metrics)
			return res
		}
		mr := &res.Machines[k]
		mr.Machine = cfg.Name
		if exSalt != "" {
			mr.Key = dfg.KeyFrom(fp, cfg, "sched", salt, exSalt)
		} else {
			mr.Key = dfg.KeyFrom(fp, cfg, "sched", salt)
		}

		// Schedule, through the cache when one is attached.
		sspan := opt.Observer.Start(obs.KindStage, StageSchedule, rspan)
		endSched := func(err error) {
			if opt.Observer == nil {
				return
			}
			opt.Observer.End(&sspan, err, obs.S("machine", cfg.Name),
				obs.B("cache_hit", mr.CacheHit), obs.B("degraded", mr.Degraded))
		}
		var entry *schedEntry
		if useCache {
			if v, ok := opt.Cache.Get(mr.Key); ok {
				entry = v.(*schedEntry)
				mr.CacheHit = true
				metrics.CacheHit()
			}
		}
		fresh := entry == nil
		if entry == nil {
			if useCache {
				metrics.CacheMiss()
			}
			e := &schedEntry{backend: opt.backendName()}
			err := metrics.timed(StageSchedule, func() error {
				return safeStage(StageSchedule, res.Name, metrics, func() error {
					if err := probe(StageSchedule); err != nil {
						return err
					}
					lst, err := sc.List(res.Graph, cfg, opt.Baseline)
					if err != nil {
						return err
					}
					// Clone: the entry may be cached and outlive the worker's
					// scratch, whose buffers the next call recycles.
					e.list = lst.Clone()
					// The synchronization-aware slot is served by the
					// configured backend (the paper's heuristic by default,
					// resolved through the Scheduler seam).
					sched, err := opt.backendScheduler(res.N)
					if err != nil {
						return err
					}
					if ss, ok := sched.(core.ScratchScheduler); ok {
						// Heuristic backends schedule into the worker scratch;
						// only the surviving schedule is materialized.
						s, err := ss.ScheduleScratch(sc, res.Graph, cfg)
						if err != nil {
							return err
						}
						e.sync = s.Clone()
						e.backend = sched.Name()
					} else {
						out, err := sched.Schedule(res.Graph, cfg)
						if err != nil {
							return err
						}
						e.sync = out.Schedule
						e.backend = sched.Name()
						e.predictedT = out.T
						e.optimal = out.Optimal
						e.lowerBound = out.LowerBound
						e.searchNodes = out.Nodes
						e.note = out.Note
					}
					if e.predictedT == 0 && e.sync != nil {
						// Heuristic backends attach no objective; report the
						// closed-form prediction for the served schedule.
						e.predictedT = model.Predict(e.sync, res.N)
						e.predictedAtN = res.N
					}
					// Post-hoc verification of the synchronization-aware
					// schedule: a scheduler bug degrades the answer, it does
					// not ship an invalid schedule.
					if err := e.sync.Validate(); err != nil {
						return fmt.Errorf("%s schedule failed validation: %w", e.backend, err)
					}
					if opt.Best {
						b, err := sc.Best(res.Graph, cfg)
						if err != nil {
							return err
						}
						e.best = b.Clone()
					}
					return nil
				})
			})
			if err != nil {
				// Graceful degradation: serve the verified program-order
				// baseline instead of failing the request. The paper
				// guarantees it is a correct schedule whenever one exists.
				fb, ferr := fallbackSchedule(res.Graph, cfg)
				if ferr != nil {
					res.Err = fmt.Errorf("pipeline: schedule %s on %s: %v (fallback failed: %w)",
						res.Name, cfg.Name, err, ferr)
					endSched(res.Err)
					return res
				}
				e = &schedEntry{list: e.list, sync: fb, backend: e.backend,
					predictedT: model.Predict(fb, res.N)}
				if e.list == nil || e.list.Validate() != nil {
					e.list = fb
				}
				if opt.Best {
					e.best = fb
				}
				mr.Degraded = true
				mr.DegradedReason = err.Error()
				metrics.Fallback()
				entry = e
			} else {
				entry = e
			}
		}
		mr.List, mr.Sync, mr.Best = entry.list, entry.sync, entry.best
		entry.fillOutcome(mr, res.N)
		endSched(nil)

		// Independent verification of every freshly built schedule —
		// organic or fallback — before it is served or published:
		// internal/check re-derives the dependence edges from the compiled
		// code (sharing no code with the schedulers) and re-checks the
		// synchronization conditions, resource feasibility and deadlock
		// freedom. A rejected schedule degrades onto the program-order
		// fallback exactly like a scheduler panic does; a rejected fallback
		// fails the request. Only verified, non-degraded entries reach the
		// cache, so cache hits serve schedules that already passed and skip
		// the stage.
		if fresh {
			vspan := opt.Observer.Start(obs.KindStage, StageVerify, rspan)
			endVerify := func(err error) {
				if opt.Observer == nil {
					return
				}
				opt.Observer.End(&vspan, err, obs.S("machine", cfg.Name),
					obs.B("degraded", mr.Degraded))
			}
			verr := metrics.timed(StageVerify, func() error {
				return safeStage(StageVerify, res.Name, metrics, func() error {
					if err := probe(StageVerify); err != nil {
						return err
					}
					for _, s := range []*core.Schedule{entry.list, entry.sync, entry.best} {
						if s == nil {
							continue
						}
						if err := check.Err(check.Verify(s)); err != nil {
							return err
						}
					}
					return nil
				})
			})
			if verr != nil {
				metrics.Rejected()
				if mr.Degraded {
					// Even the fallback was rejected; nothing verified is
					// left to serve.
					res.Err = fmt.Errorf("pipeline: verify %s on %s: %w", res.Name, cfg.Name, verr)
					endVerify(res.Err)
					return res
				}
				fb, ferr := fallbackSchedule(res.Graph, cfg)
				if ferr == nil {
					ferr = check.Err(check.Verify(fb))
				}
				if ferr != nil {
					res.Err = fmt.Errorf("pipeline: verify %s on %s: %v (fallback failed: %w)",
						res.Name, cfg.Name, verr, ferr)
					endVerify(res.Err)
					return res
				}
				entry = &schedEntry{list: fb, sync: fb, backend: entry.backend,
					predictedT: model.Predict(fb, res.N)}
				if opt.Best {
					entry.best = fb
				}
				mr.Degraded = true
				mr.DegradedReason = verr.Error()
				metrics.Fallback()
			} else {
				metrics.Verified()
				if useCache && !mr.Degraded && entry.cacheable() {
					v, _ := opt.Cache.Put(mr.Key, entry)
					entry = v.(*schedEntry)
				}
			}
			mr.List, mr.Sync, mr.Best = entry.list, entry.sync, entry.best
			entry.fillOutcome(mr, res.N)
			endVerify(nil)
		}

		if ctx.Err() != nil {
			res.Err = ctxErr(ctx, res.Name, metrics)
			return res
		}

		// Simulate; timings additionally key on trip count and window.
		// Degraded schedules never touch the time cache.
		simOpt := sim.Options{Lo: 1, Hi: res.N, Window: opt.Window}
		mspan := opt.Observer.Start(obs.KindStage, StageSimulate, rspan)
		var times *timeEntry
		timeCached := false
		timeKey := dfg.KeyFrom(fp, cfg, "time", salt, nwSalt, exSalt)
		// Timings of schedules that may not be cached (non-optimal exact
		// results, which depend on the search budget) stay out of the time
		// cache too — the budget is not part of the key.
		if useCache && !mr.Degraded && entry.cacheable() {
			if v, ok := opt.Cache.Get(timeKey); ok {
				times = v.(*timeEntry)
				timeCached = true
				metrics.CacheHit()
			} else {
				metrics.CacheMiss()
			}
		}
		if times == nil {
			te := &timeEntry{}
			err := metrics.timed(StageSimulate, func() error {
				return safeStage(StageSimulate, res.Name, metrics, func() error {
					if err := probe(StageSimulate); err != nil {
						return err
					}
					// With Options.Utilization the run is traced and the
					// attribution books are verified against the timing
					// counters; otherwise this is plain sim.Time.
					timeOne := func(s *core.Schedule) (sim.Timing, *sim.Utilization, error) {
						if !opt.Utilization {
							tm, err := sim.Time(s, simOpt)
							return tm, nil, err
						}
						tm, u, err := sim.Utilize(s, simOpt)
						if err == nil {
							u.Loop = res.Name
						}
						return tm, u, err
					}
					lt, lu, err := timeOne(entry.list)
					if err != nil {
						return err
					}
					st, su, err := timeOne(entry.sync)
					if err != nil {
						return err
					}
					te.listUtil, te.syncUtil = lu, su
					te.listTime, te.listStalls = lt.Total, lt.StallCycles
					te.syncTime, te.syncStalls = st.Total, st.StallCycles
					te.listSignals, te.syncSignals = lt.SignalsSent, st.SignalsSent
					te.listLBD, te.listLFD = arcSplit(entry.list)
					te.syncLBD, te.syncLFD = arcSplit(entry.sync)
					if entry.best != nil {
						bt, err := sim.Time(entry.best, simOpt)
						if err != nil {
							return err
						}
						te.bestTime = bt.Total
					}
					return nil
				})
			})
			if err != nil {
				if mr.Degraded {
					// Even the fallback failed to simulate; nothing correct
					// left to serve.
					res.Err = fmt.Errorf("pipeline: simulate %s on %s: %w", res.Name, cfg.Name, err)
					endSim(mspan, res.Err, mr, nil, timeCached, opt.Observer)
					return res
				}
				// Degrade at the simulation stage: time the verified
				// program-order fallback instead. It too must pass the
				// independent verifier before being served.
				fb, ferr := fallbackSchedule(res.Graph, cfg)
				if ferr == nil {
					ferr = check.Err(check.Verify(fb))
				}
				var ft sim.Timing
				if ferr == nil {
					ft, ferr = sim.Time(fb, simOpt)
				}
				if ferr != nil {
					res.Err = fmt.Errorf("pipeline: simulate %s on %s: %v (fallback failed: %w)",
						res.Name, cfg.Name, err, ferr)
					endSim(mspan, res.Err, mr, nil, timeCached, opt.Observer)
					return res
				}
				entry = &schedEntry{list: fb, sync: fb, backend: entry.backend,
					predictedT: model.Predict(fb, res.N)}
				if opt.Best {
					entry.best = fb
				}
				mr.List, mr.Sync, mr.Best = entry.list, entry.sync, entry.best
				entry.fillOutcome(mr, res.N)
				mr.Degraded = true
				mr.CacheHit = false // the cached schedules were replaced by the fallback
				mr.DegradedReason = err.Error()
				metrics.Fallback()
				fbLBD, fbLFD := arcSplit(fb)
				te = &timeEntry{
					listTime: ft.Total, syncTime: ft.Total,
					listStalls: ft.StallCycles, syncStalls: ft.StallCycles,
					listSignals: ft.SignalsSent, syncSignals: ft.SignalsSent,
					listLBD: fbLBD, syncLBD: fbLBD,
					listLFD: fbLFD, syncLFD: fbLFD,
				}
				if opt.Best {
					te.bestTime = ft.Total
				}
				times = te
			} else {
				times = te
				if useCache && !mr.Degraded && entry.cacheable() {
					v, _ := opt.Cache.Put(timeKey, times)
					times = v.(*timeEntry)
				}
			}
		}
		mr.ListTime, mr.SyncTime, mr.BestTime = times.listTime, times.syncTime, times.bestTime
		mr.ListUtil, mr.SyncUtil = times.listUtil, times.syncUtil
		mr.ListStalls, mr.SyncStalls = times.listStalls, times.syncStalls
		mr.ListLBD, mr.SyncLBD = times.listLBD, times.syncLBD
		mr.ListLFD, mr.SyncLFD = times.listLFD, times.syncLFD
		mr.ListSignals, mr.SyncSignals = times.listSignals, times.syncSignals
		mr.Improvement = model.Speedup(times.listTime, times.syncTime)
		// Independent timing audit: the simulated total must cover at least
		// one full iteration and at least the closed-form lower bound
		// T = (n/d)(i-j) + l of the served schedule. A violation means the
		// simulator and the analytical model disagree about this schedule —
		// there is no better answer to fall back on, so the request fails.
		if err := check.Err(check.VerifyTiming(mr.Sync, mr.SyncTime, res.N)); err != nil {
			metrics.Error(StageVerify)
			res.Err = fmt.Errorf("pipeline: verify %s on %s: %w", res.Name, cfg.Name, err)
			endSim(mspan, res.Err, mr, times, timeCached, opt.Observer)
			return res
		}
		// Write-through to the persistent tier: freshly simulated, verified,
		// non-degraded, cacheable results survive restarts. Failures are
		// counted by the store and never fail the request.
		if opt.Disk != nil && !timeCached && !mr.Degraded && entry.cacheable() {
			persistResult(opt.Disk, res.Name, src, opt, cfg, fp, res.N, entry, times)
		}
		// Paper-level counters describe the schedule actually served (the
		// synchronization-aware one, or the fallback standing in for it).
		metrics.ObserveSim(int64(times.syncSignals), int64(times.syncStalls),
			int64(times.syncLBD), int64(times.syncLFD))
		metrics.ObserveUtil(times.syncUtil)
		endSim(mspan, nil, mr, times, timeCached, opt.Observer)
	}
	return res
}

// arcSplit partitions a schedule's synchronization pairs into lexically
// backward and forward arcs.
func arcSplit(s *core.Schedule) (lbd, lfd int) {
	lbd = s.NumLBD()
	return lbd, len(s.PairSpans()) - lbd
}

// endSim finishes a simulate-stage span with the paper-level attributes of
// the served result (times may be nil when the stage failed outright). On a
// nil recorder it returns before building any attributes — the happy path of
// an unobserved batch allocates nothing here.
func endSim(sp obs.Span, err error, mr *MachineResult, times *timeEntry, cached bool, rec *obs.Recorder) {
	if rec == nil {
		return
	}
	attrs := []obs.Attr{
		obs.S("machine", mr.Machine),
		obs.B("cache_hit", cached),
		obs.B("degraded", mr.Degraded),
	}
	if times != nil {
		attrs = append(attrs,
			obs.I("signals_sent", int64(times.syncSignals)),
			obs.I("wait_stall_cycles", int64(times.syncStalls)),
			obs.I("lbd_arcs", int64(times.syncLBD)),
			obs.I("lfd_arcs", int64(times.syncLFD)),
			obs.I("sync_cycles", int64(times.syncTime)),
			obs.I("list_cycles", int64(times.listTime)))
	}
	rec.End(&sp, err, attrs...)
}
