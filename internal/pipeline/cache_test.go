package pipeline

import (
	"fmt"
	"sync"
	"testing"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

func buildGraph(t testing.TB, src string) *dfg.Graph {
	t.Helper()
	a := dep.Analyze(lang.MustParse(src))
	p, err := tac.Generate(syncop.Insert(a, syncop.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := dfg.Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCacheFirstWriterWins(t *testing.T) {
	c := NewCache()
	k := buildGraph(t, fig1).Fingerprint()
	v1, loaded := c.Put(k, "first")
	if loaded || v1 != "first" {
		t.Fatalf("first Put = %v, %v", v1, loaded)
	}
	v2, loaded := c.Put(k, "second")
	if !loaded || v2 != "first" {
		t.Fatalf("second Put = %v, %v; want first writer's value", v2, loaded)
	}
	got, ok := c.Get(k)
	if !ok || got != "first" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

// TestCacheConcurrentOneFingerprint is the satellite race test: many
// goroutines Get and Put one fingerprint concurrently. Under -race this
// checks the publication discipline; the assertion checks that exactly one
// value ever becomes visible.
func TestCacheConcurrentOneFingerprint(t *testing.T) {
	c := NewCache()
	k := buildGraph(t, fig1).Fingerprint()
	const goroutines = 32
	const rounds = 200
	var wg sync.WaitGroup
	values := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := fmt.Sprintf("value-%d", g)
			var last any
			for r := 0; r < rounds; r++ {
				if v, ok := c.Get(k); ok {
					last = v
				}
				v, _ := c.Put(k, mine)
				last = v
			}
			values[g] = last
		}(g)
	}
	wg.Wait()
	want, ok := c.Get(k)
	if !ok {
		t.Fatal("key vanished")
	}
	for g, v := range values {
		if v != want {
			t.Errorf("goroutine %d observed %v, cache holds %v", g, v, want)
		}
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheConcurrentManyKeys(t *testing.T) {
	c := NewCache()
	keys := make([]dfg.Fingerprint, 64)
	for i := range keys {
		keys[i] = buildGraph(t, fmt.Sprintf("DO I = 1, N\nA[I] = A[I-1] + %d\nENDDO", i)).Fingerprint()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, k := range keys {
				c.Put(k, i)
				if v, ok := c.Get(k); !ok || v.(int) != i {
					t.Errorf("key %d: got %v, %v", i, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != len(keys) {
		t.Errorf("Len = %d, want %d", c.Len(), len(keys))
	}
}

func TestFingerprintProperties(t *testing.T) {
	g1 := buildGraph(t, fig1)
	g2 := buildGraph(t, fig1)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("identical sources fingerprint differently")
	}
	g3 := buildGraph(t, "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Error("different loops share a fingerprint")
	}
	// Machine shape matters, its name does not.
	a := dlx.Standard(4, 1)
	b := dlx.Standard(4, 1)
	b.Name = "renamed"
	if dfg.ConfigKey(g1, a) != dfg.ConfigKey(g1, b) {
		t.Error("machine name leaked into the cache key")
	}
	if dfg.ConfigKey(g1, a) == dfg.ConfigKey(g1, dlx.Standard(2, 1)) {
		t.Error("issue width ignored by the cache key")
	}
	if dfg.ConfigKey(g1, a) == dfg.ConfigKey(g1, dlx.Uniform(4, 1)) {
		t.Error("latencies ignored by the cache key")
	}
	if dfg.ConfigKey(g1, a, "x") == dfg.ConfigKey(g1, a, "y") {
		t.Error("salt ignored by the cache key")
	}
	if dfg.ConfigKey(g1, a, "xy") == dfg.ConfigKey(g1, a, "x", "y") {
		t.Error("salt concatenation ambiguous")
	}
	if dfg.KeyFrom(g1.Fingerprint(), a, "s") != dfg.ConfigKey(g1, a, "s") {
		t.Error("KeyFrom diverges from ConfigKey")
	}
}

// TestCacheBoundedEviction: a bounded cache admits new keys by evicting an
// arbitrary resident entry, counts the evictions, and still honors
// first-writer-wins for keys that stay resident.
func TestCacheBoundedEviction(t *testing.T) {
	c := NewCacheBounded(cacheShards) // one entry per shard
	key := func(shard, n byte) dfg.Fingerprint {
		var k dfg.Fingerprint
		k[0], k[1] = shard, n
		return k
	}
	// Three distinct keys that land in the same shard: each newcomer evicts
	// the resident entry.
	for n := byte(0); n < 3; n++ {
		if _, loaded := c.Put(key(7, n), int(n)); loaded {
			t.Fatalf("fresh key %d reported as already bound", n)
		}
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("Evictions = %d, want 2", got)
	}
	resident := 0
	for n := byte(0); n < 3; n++ {
		if _, ok := c.Get(key(7, n)); ok {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("%d entries resident in the shard, want 1", resident)
	}
	// Re-Putting the resident key is first-writer-wins, not an eviction.
	if v, loaded := c.Put(key(7, 2), "other"); !loaded || v != 2 {
		t.Fatalf("resident re-Put = %v, %v; want first writer's value", v, loaded)
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("re-Put evicted: Evictions = %d, want 2", got)
	}
	// Different shards do not contend for the bound.
	if _, loaded := c.Put(key(8, 0), "b"); loaded {
		t.Fatal("other shard's key reported as bound")
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("cross-shard Put evicted: Evictions = %d, want 2", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// An unbounded cache never evicts.
	u := NewCache()
	for n := byte(0); n < 100; n++ {
		u.Put(key(7, n), n)
	}
	if u.Evictions() != 0 || u.Len() != 100 {
		t.Fatalf("unbounded cache: Len=%d Evictions=%d", u.Len(), u.Evictions())
	}
}
