package pipeline

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"doacross/internal/dfg"
	"doacross/internal/faults"
)

func testKey(b byte) dfg.Fingerprint {
	var k dfg.Fingerprint
	for i := range k {
		k[i] = b
	}
	return k
}

func TestDiskStoreRoundtrip(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Get = %q, want %q", got, payload)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != k {
		t.Errorf("Keys = %v", keys)
	}
	// Replacing an entry neither duplicates it nor changes the count.
	if err := s.Put(k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", s.Len())
	}
	if got, _ := s.Get(k); string(got) != "v2" {
		t.Errorf("replaced entry = %q", got)
	}
	if _, err := s.Get(testKey(9)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing key: %v, want ErrNotExist", err)
	}
	st := s.Stats()
	if st.Writes != 2 || st.Reads != 2 || st.Corrupt != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// corrupting helpers: the on-disk entry of k, located without exporting the
// layout.
func entryFile(t *testing.T, s *DiskStore, k dfg.Fingerprint) string {
	t.Helper()
	path := s.path(k)
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiskStoreDetectsCorruption(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flip, trunc := testKey(1), testKey(2)
	for _, k := range []dfg.Fingerprint{flip, trunc} {
		if err := s.Put(k, []byte("a perfectly fine payload")); err != nil {
			t.Fatal(err)
		}
	}

	// Bit rot: flip one payload byte.
	fp := entryFile(t, s, flip)
	data, err := os.ReadFile(fp)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(fp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptEntryError
	if _, err := s.Get(flip); !errors.As(err, &ce) {
		t.Fatalf("flipped entry: %v, want CorruptEntryError", err)
	}

	// Torn write: truncate mid-payload.
	tp := entryFile(t, s, trunc)
	if err := os.Truncate(tp, int64(diskHeaderSize+3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(trunc); !errors.As(err, &ce) {
		t.Fatalf("truncated entry: %v, want CorruptEntryError", err)
	}

	// Quarantine keeps the bytes for post-mortem and removes the live entry.
	if err := s.Quarantine(flip); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.quarantinePath(flip)); err != nil {
		t.Errorf("quarantined bytes missing: %v", err)
	}
	if _, err := s.Get(flip); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("quarantined entry still served: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	st := s.Stats()
	if st.Corrupt != 2 || st.Quarantined != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Quarantined entries are invisible to Keys and to a reopened store.
	keys, _ := s.Keys()
	if len(keys) != 1 || keys[0] != trunc {
		t.Errorf("Keys = %v", keys)
	}
	s2, err := OpenDiskStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Errorf("reopened Len = %d, want 1", s2.Len())
	}
}

func TestDiskStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("live")); err != nil {
		t.Fatal(err)
	}
	// A crashed writer's leftovers, at both directory levels.
	sub := filepath.Dir(s.path(testKey(1)))
	for _, p := range []string{filepath.Join(dir, "put-123.tmp"), filepath.Join(sub, "put-456.tmp")} {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d, want 1", s2.Len())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*", "*.tmp"))
	root, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if n := len(matches) + len(root); n != 0 {
		t.Errorf("%d temp files survived the sweep", n)
	}
	if err := s2.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
}

// TestDiskStoreFaultInjection drives the three disk-io fault kinds through
// the structural hook: DiskFail fails the operation, DiskShortWrite
// publishes a truncated entry the checksum must catch, DiskCorrupt flips a
// byte on the read path.
func TestDiskStoreFaultInjection(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)

	s.SetFaultHook(faults.MustNew(faults.Plan{DiskFail: 1}).Probe)
	err = s.Put(k, []byte("payload"))
	if err == nil {
		t.Fatal("DiskFail write succeeded")
	}
	if _, ok := faults.IsInjected(err); !ok {
		t.Fatalf("failed write does not carry the injected fault: %v", err)
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Entries != 0 {
		t.Errorf("stats after failed write = %+v", st)
	}

	s.SetFaultHook(faults.MustNew(faults.Plan{DiskShortWrite: 1}).Probe)
	if err := s.Put(k, []byte("a payload long enough to truncate")); err != nil {
		t.Fatalf("short write reported failure: %v", err)
	}
	s.SetFaultHook(nil)
	var ce *CorruptEntryError
	if _, err := s.Get(k); !errors.As(err, &ce) {
		t.Fatalf("short-written entry read back: %v, want CorruptEntryError", err)
	}

	if err := s.Put(k, []byte("clean payload")); err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faults.MustNew(faults.Plan{DiskCorrupt: 1}).Probe)
	if _, err := s.Get(k); !errors.As(err, &ce) {
		t.Fatalf("corrupt read served: %v, want CorruptEntryError", err)
	}
	s.SetFaultHook(nil)
	if got, err := s.Get(k); err != nil || string(got) != "clean payload" {
		t.Fatalf("clean read after fault removed: %q, %v", got, err)
	}
}
