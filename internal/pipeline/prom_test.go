package pipeline

import (
	"bytes"
	"expvar"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the full exposition for a deterministic registry:
// metric names, HELP/TYPE headers, cumulative histogram buckets, and the
// counter/gauge values all come out exactly as written here.
func TestPrometheusGolden(t *testing.T) {
	m := NewMetrics()
	m.Observe(StageSchedule, 5*time.Microsecond)
	m.Observe(StageSchedule, 50*time.Millisecond)
	m.Error(StageSchedule)
	m.CacheHit()
	m.CacheHit()
	m.CacheMiss()
	m.Panic()
	m.Timeout()
	m.Fallback()
	m.Verified()
	m.Verified()
	m.Rejected()
	m.LintFindings(5)
	m.ObserveDeps(6, 2, 1)
	m.ObserveSim(10, 20, 3, 4)
	m.WorkerStart()
	m.QueueAdd(2)

	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	const want = `# HELP doacross_stage_duration_seconds Latency of pipeline stages and compilation passes.
# TYPE doacross_stage_duration_seconds histogram
doacross_stage_duration_seconds_bucket{stage="schedule",le="1e-05"} 1
doacross_stage_duration_seconds_bucket{stage="schedule",le="0.0001"} 1
doacross_stage_duration_seconds_bucket{stage="schedule",le="0.001"} 1
doacross_stage_duration_seconds_bucket{stage="schedule",le="0.01"} 1
doacross_stage_duration_seconds_bucket{stage="schedule",le="0.1"} 2
doacross_stage_duration_seconds_bucket{stage="schedule",le="1"} 2
doacross_stage_duration_seconds_bucket{stage="schedule",le="+Inf"} 2
doacross_stage_duration_seconds_sum{stage="schedule"} 0.050005
doacross_stage_duration_seconds_count{stage="schedule"} 2
# HELP doacross_stage_runs_total Completed executions per stage.
# TYPE doacross_stage_runs_total counter
doacross_stage_runs_total{stage="schedule"} 2
# HELP doacross_stage_errors_total Failed executions per stage.
# TYPE doacross_stage_errors_total counter
doacross_stage_errors_total{stage="schedule"} 1
# HELP doacross_cache_hits_total Schedule-cache hits.
# TYPE doacross_cache_hits_total counter
doacross_cache_hits_total 2
# HELP doacross_cache_misses_total Schedule-cache misses.
# TYPE doacross_cache_misses_total counter
doacross_cache_misses_total 1
# HELP doacross_cache_evictions_total Schedule-cache entries evicted by the capacity bound.
# TYPE doacross_cache_evictions_total counter
doacross_cache_evictions_total 0
# HELP doacross_panics_recovered_total Panics recovered inside workers, stages and passes.
# TYPE doacross_panics_recovered_total counter
doacross_panics_recovered_total 1
# HELP doacross_request_timeouts_total Requests lost to deadlines or cancellation.
# TYPE doacross_request_timeouts_total counter
doacross_request_timeouts_total 1
# HELP doacross_fallbacks_total Requests served by the verified program-order fallback schedule.
# TYPE doacross_fallbacks_total counter
doacross_fallbacks_total 1
# HELP doacross_schedules_verified_total Schedule sets accepted by the independent post-schedule verifier.
# TYPE doacross_schedules_verified_total counter
doacross_schedules_verified_total 2
# HELP doacross_schedules_rejected_total Schedule sets the independent post-schedule verifier refused to serve.
# TYPE doacross_schedules_rejected_total counter
doacross_schedules_rejected_total 1
# HELP doacross_lint_findings_total Synchronization-linter findings across fresh compilations.
# TYPE doacross_lint_findings_total counter
doacross_lint_findings_total 5
# HELP doacross_dep_exact_total Dependence pairs proven exact (distances enumerated with witnesses) across fresh compilations.
# TYPE doacross_dep_exact_total counter
doacross_dep_exact_total 6
# HELP doacross_dep_independent_total Dependence pairs proven independent (GCD or bound-separation certificate) across fresh compilations.
# TYPE doacross_dep_independent_total counter
doacross_dep_independent_total 2
# HELP doacross_dep_conservative_total Dependence pairs assumed conservative (undecidable residue) across fresh compilations.
# TYPE doacross_dep_conservative_total counter
doacross_dep_conservative_total 1
# HELP doacross_sim_signals_sent_total Send_Signal issues across served simulations (paper-level sync traffic).
# TYPE doacross_sim_signals_sent_total counter
doacross_sim_signals_sent_total 10
# HELP doacross_sim_wait_stall_cycles_total Cycles lost to Wait_Signal stalls across served simulations.
# TYPE doacross_sim_wait_stall_cycles_total counter
doacross_sim_wait_stall_cycles_total 20
# HELP doacross_sched_lbd_arcs_total Synchronization arcs left lexically backward by served schedules.
# TYPE doacross_sched_lbd_arcs_total counter
doacross_sched_lbd_arcs_total 3
# HELP doacross_sched_lfd_arcs_total Synchronization arcs placed lexically forward by served schedules.
# TYPE doacross_sched_lfd_arcs_total counter
doacross_sched_lfd_arcs_total 4
# HELP doacross_workers_in_flight Requests currently executing inside a worker.
# TYPE doacross_workers_in_flight gauge
doacross_workers_in_flight 1
# HELP doacross_queue_depth Requests enqueued but not yet picked up by a worker.
# TYPE doacross_queue_depth gauge
doacross_queue_depth 2
# HELP doacross_cache_entries Entries resident in the attached schedule cache.
# TYPE doacross_cache_entries gauge
doacross_cache_entries 0
`
	if got := buf.String(); got != want {
		t.Errorf("exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusCacheGauges: an attached bounded cache surfaces occupancy and
// evictions in the exposition.
func TestPrometheusCacheGauges(t *testing.T) {
	m := NewMetrics()
	c := NewCacheBounded(cacheShards) // one entry per shard
	key := func(shard, n byte) [32]byte {
		var k [32]byte
		k[0], k[1] = shard, n
		return k
	}
	c.Put(key(3, 0), "a")
	c.Put(key(3, 1), "b") // same shard: evicts "a"
	m.AttachCache(c)

	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, line := range []string{
		"doacross_cache_entries 1",
		"doacross_cache_evictions_total 1",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestQuantile(t *testing.T) {
	// All 100 samples in the 100µs..1ms bucket: every quantile interpolates
	// inside it, monotonically.
	var s StageStats
	s.Count = 100
	s.Buckets[2] = 100
	s.Max = 900 * time.Microsecond
	p50, p95, p99 := s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
	if p50 < 100*time.Microsecond || p99 > time.Millisecond {
		t.Fatalf("quantiles escaped the bucket: p50=%v p99=%v", p50, p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotonic: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Log-linear midpoint of [100µs, 1ms] is the geometric mean ≈ 316µs.
	if p50 < 250*time.Microsecond || p50 > 400*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈316µs (log-linear midpoint)", p50)
	}

	// Split distribution: 90 fast, 10 slow — p50 stays in the fast bucket,
	// p99 lands in the slow one.
	var d StageStats
	d.Count = 100
	d.Buckets[0] = 90
	d.Buckets[4] = 10
	d.Max = 80 * time.Millisecond
	if q := d.Quantile(0.50); q > 10*time.Microsecond {
		t.Fatalf("p50 = %v, want within the fast bucket", q)
	}
	if q := d.Quantile(0.99); q < 10*time.Millisecond || q > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want within the slow bucket", q)
	}

	// Overflow bucket interpolates up to the observed max.
	var o StageStats
	o.Count = 10
	o.Buckets[numBuckets-1] = 10
	o.Max = 5 * time.Second
	if q := o.Quantile(0.99); q < time.Second || q > 5*time.Second {
		t.Fatalf("overflow p99 = %v, want in [1s, 5s]", q)
	}

	// Degenerate cases.
	var z StageStats
	if z.Quantile(0.5) != 0 {
		t.Fatal("empty stage should report 0")
	}
	if s.Quantile(-1) > s.Quantile(0) || s.Quantile(2) < s.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestStatsQuantileByStage(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 50; i++ {
		m.Observe(StageSimulate, 3*time.Microsecond)
	}
	st := m.Stats()
	if q := st.Quantile(StageSimulate, 0.95); q <= 0 || q > 10*time.Microsecond {
		t.Fatalf("p95 = %v, want in the first bucket", q)
	}
	if q := st.Quantile("never-ran", 0.95); q != 0 {
		t.Fatalf("unknown stage quantile = %v, want 0", q)
	}
	// The String report carries the percentile line.
	if s := st.String(); !strings.Contains(s, "p50") || !strings.Contains(s, "p99") {
		t.Fatalf("Stats.String missing percentiles:\n%s", s)
	}
}

func TestPublishExpvar(t *testing.T) {
	m1 := NewMetrics()
	m1.CacheHit()
	m1.PublishExpvar("doacross.test")
	v := expvar.Get("doacross.test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if s := v.String(); !strings.Contains(s, `"CacheHits":1`) {
		t.Fatalf("expvar snapshot = %s", s)
	}
	// Republishing rebinds to the newer registry instead of panicking.
	m2 := NewMetrics()
	m2.CacheHit()
	m2.CacheHit()
	m2.PublishExpvar("doacross.test")
	if s := expvar.Get("doacross.test").String(); !strings.Contains(s, `"CacheHits":2`) {
		t.Fatalf("expvar not rebound: %s", s)
	}
}
