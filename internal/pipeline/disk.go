package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"doacross/internal/dfg"
)

// DiskStore is the crash-safe persistent tier under the in-memory schedule
// cache: a content-addressed on-disk store whose keys are the same
// dfg.Fingerprint values the in-memory Cache uses. It is designed to be
// kill -9'd at any instant without ever serving garbage afterwards:
//
//   - Writes are atomic: each entry lands in a temp file in the same
//     directory, is fsynced, and is then renamed over its final name. A
//     crash mid-write leaves at most a *.tmp file that Open sweeps away;
//     it never leaves a half-written entry under a live name.
//   - Every entry carries a versioned header (magic, format version,
//     payload length) and a SHA-256 checksum of its payload. Get re-hashes
//     the payload on every read, so torn writes, truncation and bit rot
//     surface as *CorruptEntryError — never as bad data.
//   - Corrupt entries are never deleted silently: Quarantine moves them to
//     a quarantine/ subdirectory for post-mortem and counts them.
//
// Integrity-checking the bytes is only half the trust story: the payload
// may be a perfectly checksummed schedule that is semantically stale or
// wrong. LoadDisk therefore re-verifies every decoded schedule through
// internal/check before anything reaches the in-memory cache — the store
// itself guarantees only "these are exactly the bytes that were written".
//
// A SetFaultHook hook is probed before every write ("disk-write") and read
// ("disk-read") so the seeded chaos injector (internal/faults) can drive
// the failure paths deterministically: outright IO failure, short (torn)
// writes and corrupt reads.
type DiskStore struct {
	dir  string
	qdir string

	faultHook atomic.Pointer[func(stage, name string) error]

	entries     atomic.Int64
	writes      atomic.Int64
	writeErrors atomic.Int64
	reads       atomic.Int64
	readErrors  atomic.Int64
	corrupt     atomic.Int64
	quarantined atomic.Int64
}

// Entry format: a fixed header followed by the payload.
//
//	offset 0  magic   "DOAX"
//	offset 4  version uint32 LE
//	offset 8  length  uint64 LE (payload bytes)
//	offset 16 sum     SHA-256 of the payload
//	offset 48 payload
const (
	diskMagic      = "DOAX"
	diskVersion    = 1
	diskHeaderSize = 4 + 4 + 8 + sha256.Size
)

// entryExt suffixes live entries; tmpExt marks in-progress writes that a
// crash may leave behind (swept by Open).
const (
	entryExt = ".entry"
	tmpExt   = ".tmp"
)

// quarantineDir is the subdirectory corrupt entries are moved to.
const quarantineDir = "quarantine"

// CorruptEntryError reports an on-disk entry whose bytes failed integrity
// or semantic verification. The entry is still on disk (under its original
// name, or under quarantine/ once quarantined).
type CorruptEntryError struct {
	Key    dfg.Fingerprint
	Path   string
	Reason string
}

// Error renders the corruption.
func (e *CorruptEntryError) Error() string {
	return fmt.Sprintf("disk store: corrupt entry %s: %s", hex.EncodeToString(e.Key[:8]), e.Reason)
}

// DiskStats is a snapshot of a store's counters. Entries is a gauge; the
// rest are monotonic counters since Open.
type DiskStats struct {
	Entries     int64
	Writes      int64
	WriteErrors int64
	Reads       int64
	ReadErrors  int64
	Corrupt     int64
	Quarantined int64
}

// OpenDiskStore opens (creating if needed) the persistent tier rooted at
// dir. Leftover temp files from a crashed writer are removed; live entries
// are counted but not read — verification happens entry by entry in
// LoadDisk, so a corrupt file cannot fail the whole open.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, errors.New("disk store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk store: %w", err)
	}
	s := &DiskStore{dir: dir, qdir: filepath.Join(dir, quarantineDir)}
	if err := os.MkdirAll(s.qdir, 0o755); err != nil {
		return nil, fmt.Errorf("disk store: %w", err)
	}
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != dir && filepath.Base(path) == quarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		switch filepath.Ext(path) {
		case tmpExt:
			// A crashed writer's leftovers: never renamed, so never live.
			return os.Remove(path)
		case entryExt:
			n++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("disk store: scan %s: %w", dir, err)
	}
	s.entries.Store(int64(n))
	return s, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// SetFaultHook installs (or, with nil, removes) the chaos hook probed
// before every write and read with ("disk-write"/"disk-read", key prefix).
// An error whose DiskFaultKind() method returns "short-write" truncates the
// write mid-payload, "corrupt-read" flips a payload byte on the way in, and
// anything else fails the operation outright (internal/faults.Injected
// implements the method; the interface is asserted structurally so the two
// packages stay import-decoupled).
func (s *DiskStore) SetFaultHook(h func(stage, name string) error) {
	if h == nil {
		s.faultHook.Store(nil)
		return
	}
	s.faultHook.Store(&h)
}

// diskFaulter is the behavioral disk-fault contract, mirrored from
// internal/faults without importing it.
type diskFaulter interface{ DiskFaultKind() string }

// probe fires the fault hook for one operation, returning the requested
// behavior: "" (no fault), "fail", "short-write" or "corrupt-read", plus
// the error to report for "fail".
func (s *DiskStore) probe(stage string, key dfg.Fingerprint) (string, error) {
	hp := s.faultHook.Load()
	if hp == nil {
		return "", nil
	}
	err := (*hp)(stage, hex.EncodeToString(key[:8]))
	if err == nil {
		return "", nil
	}
	var df diskFaulter
	if errors.As(err, &df) {
		if k := df.DiskFaultKind(); k == "short-write" || k == "corrupt-read" {
			return k, nil
		}
	}
	return "fail", err
}

// path returns the final location of a key's entry, fanned out over a
// two-hex-digit directory level so no single directory grows unbounded.
func (s *DiskStore) path(k dfg.Fingerprint) string {
	h := hex.EncodeToString(k[:])
	return filepath.Join(s.dir, h[:2], h+entryExt)
}

// quarantinePath returns where Quarantine moves a key's entry.
func (s *DiskStore) quarantinePath(k dfg.Fingerprint) string {
	return filepath.Join(s.qdir, hex.EncodeToString(k[:])+entryExt)
}

// encode frames a payload with the versioned header and checksum.
func encodeEntry(payload []byte) []byte {
	buf := make([]byte, diskHeaderSize+len(payload))
	copy(buf, diskMagic)
	binary.LittleEndian.PutUint32(buf[4:], diskVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:], sum[:])
	copy(buf[diskHeaderSize:], payload)
	return buf
}

// decodeEntry validates the header and checksum, returning the payload.
func decodeEntry(k dfg.Fingerprint, path string, data []byte) ([]byte, error) {
	corrupt := func(reason string) error {
		return &CorruptEntryError{Key: k, Path: path, Reason: reason}
	}
	if len(data) < diskHeaderSize {
		return nil, corrupt(fmt.Sprintf("truncated header: %d bytes", len(data)))
	}
	if !bytes.Equal(data[:4], []byte(diskMagic)) {
		return nil, corrupt("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != diskVersion {
		return nil, corrupt(fmt.Sprintf("unsupported format version %d", v))
	}
	n := binary.LittleEndian.Uint64(data[8:])
	payload := data[diskHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, corrupt(fmt.Sprintf("payload is %d bytes, header says %d", len(payload), n))
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[16:16+sha256.Size]) {
		return nil, corrupt("payload checksum mismatch")
	}
	return payload, nil
}

// Put durably binds k to payload: temp file, fsync, rename. An existing
// entry for k is replaced (the rename is atomic, so readers see either the
// old or the new complete entry). Put never leaves a half-written entry
// under the live name, whatever instant the process dies at.
func (s *DiskStore) Put(k dfg.Fingerprint, payload []byte) error {
	behavior, ferr := s.probe(StageDiskWrite, k)
	if behavior == "fail" {
		s.writeErrors.Add(1)
		return fmt.Errorf("disk store: write %s: %w", hex.EncodeToString(k[:8]), ferr)
	}
	final := s.path(k)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("disk store: %w", err)
	}
	buf := encodeEntry(payload)
	if behavior == "short-write" {
		// Injected torn write: the entry is published truncated mid-payload,
		// modelling a lying disk. The checksum must catch it on read.
		buf = buf[:diskHeaderSize+len(payload)/2]
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), "put-*"+tmpExt)
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("disk store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		s.writeErrors.Add(1)
		return fmt.Errorf("disk store: write %s: %w", hex.EncodeToString(k[:8]), err)
	}
	if _, err := tmp.Write(buf); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		s.writeErrors.Add(1)
		return fmt.Errorf("disk store: write %s: %w", hex.EncodeToString(k[:8]), err)
	}
	_, existed := s.stat(final)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		s.writeErrors.Add(1)
		return fmt.Errorf("disk store: publish %s: %w", hex.EncodeToString(k[:8]), err)
	}
	s.writes.Add(1)
	if !existed {
		s.entries.Add(1)
	}
	return nil
}

// stat reports whether path exists as a regular file.
func (s *DiskStore) stat(path string) (os.FileInfo, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, false
	}
	return fi, true
}

// Get reads and integrity-checks the entry bound to k. A missing entry
// returns os.ErrNotExist; failed header or checksum validation returns a
// *CorruptEntryError (the caller decides whether to Quarantine). The
// returned payload passed its checksum but is otherwise untrusted — run it
// through LoadDisk's verification before serving anything derived from it.
func (s *DiskStore) Get(k dfg.Fingerprint) ([]byte, error) {
	behavior, ferr := s.probe(StageDiskRead, k)
	if behavior == "fail" {
		s.readErrors.Add(1)
		return nil, fmt.Errorf("disk store: read %s: %w", hex.EncodeToString(k[:8]), ferr)
	}
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.readErrors.Add(1)
		}
		return nil, err
	}
	s.reads.Add(1)
	if behavior == "corrupt-read" && len(data) > diskHeaderSize {
		// Injected bit rot on the read path: flip one payload byte. The
		// checksum below must reject the entry.
		data[diskHeaderSize] ^= 0xff
	}
	payload, err := decodeEntry(k, path, data)
	if err != nil {
		s.corrupt.Add(1)
		return nil, err
	}
	return payload, nil
}

// Quarantine moves k's entry into the quarantine/ subdirectory (keeping the
// bytes for post-mortem) and counts it. Quarantining a missing entry is a
// no-op.
func (s *DiskStore) Quarantine(k dfg.Fingerprint) error {
	path := s.path(k)
	if _, ok := s.stat(path); !ok {
		return nil
	}
	if err := os.Rename(path, s.quarantinePath(k)); err != nil {
		return fmt.Errorf("disk store: quarantine %s: %w", hex.EncodeToString(k[:8]), err)
	}
	s.quarantined.Add(1)
	s.entries.Add(-1)
	return nil
}

// Keys lists every live entry key, in unspecified order. Files whose names
// are not well-formed keys are ignored (they cannot have been written by
// Put).
func (s *DiskStore) Keys() ([]dfg.Fingerprint, error) {
	var out []dfg.Fingerprint
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != s.dir && filepath.Base(path) == quarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if filepath.Ext(name) != entryExt {
			return nil
		}
		raw, err := hex.DecodeString(name[:len(name)-len(entryExt)])
		if err != nil || len(raw) != len(dfg.Fingerprint{}) {
			return nil
		}
		var k dfg.Fingerprint
		copy(k[:], raw)
		out = append(out, k)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("disk store: scan %s: %w", s.dir, err)
	}
	return out, nil
}

// Len returns the live entry count.
func (s *DiskStore) Len() int { return int(s.entries.Load()) }

// Flush fsyncs the store's directories so entry publications (renames)
// survive power loss; the entry contents themselves were fsynced by Put.
// Called by the daemon's drain path.
func (s *DiskStore) Flush() error {
	dirs := []string{s.dir}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("disk store: flush: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() && e.Name() != quarantineDir {
			dirs = append(dirs, filepath.Join(s.dir, e.Name()))
		}
	}
	for _, d := range dirs {
		fh, err := os.Open(d)
		if err != nil {
			return fmt.Errorf("disk store: flush: %w", err)
		}
		serr := fh.Sync()
		fh.Close()
		// Some filesystems refuse directory fsync; that is not a data-loss
		// path we can do anything about, so only real errors propagate.
		if serr != nil && !errors.Is(serr, errors.ErrUnsupported) {
			return fmt.Errorf("disk store: flush %s: %w", d, serr)
		}
	}
	return nil
}

// Stats snapshots the store's counters.
func (s *DiskStore) Stats() DiskStats {
	return DiskStats{
		Entries:     s.entries.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Reads:       s.reads.Load(),
		ReadErrors:  s.readErrors.Load(),
		Corrupt:     s.corrupt.Load(),
		Quarantined: s.quarantined.Load(),
	}
}

// Disk-tier probe stage names, mirroring internal/faults' constants without
// importing it (like stageCompile/stageCache above).
const (
	StageDiskWrite = "disk-write"
	StageDiskRead  = "disk-read"
)
