package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"doacross/internal/diag"
	"doacross/internal/dlx"
	"doacross/internal/lang"
)

const fig1 = `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`

// corpus returns count loop sources cycling over distinct shapes; shape
// parameters are varied so different indices produce different graphs.
func corpus(count int) []string {
	shapes := []func(i int) string{
		func(i int) string {
			return fmt.Sprintf("DO I = 1, N\nA[I] = A[I-%d] + %d\nENDDO", i%3+1, i)
		},
		func(i int) string {
			return fmt.Sprintf("DO I = 1, N\nS1: B[I] = A[I-1] * C[I+%d]\nS2: A[I] = B[I] + E[I]\nENDDO", i%4)
		},
		func(i int) string { return fig1 },
		func(i int) string {
			return fmt.Sprintf("DO I = 1, N\nS = S + A[I] * %d\nENDDO", i%5)
		},
	}
	out := make([]string, count)
	for i := range out {
		out[i] = shapes[i%len(shapes)](i / len(shapes))
	}
	return out
}

func run(t *testing.T, srcs []string, opt Options) *Batch {
	t.Helper()
	reqs := make([]Request, len(srcs))
	for i, s := range srcs {
		reqs[i] = Request{Source: s}
	}
	b, err := Run(reqs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunBasics(t *testing.T) {
	b := run(t, []string{fig1}, Options{})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	lr := b.Loops[0]
	if lr.N != 100 {
		t.Errorf("default N = %d, want 100", lr.N)
	}
	if len(lr.Machines) != 1 {
		t.Fatalf("machines = %d, want 1", len(lr.Machines))
	}
	mr := lr.Machines[0]
	if mr.List == nil || mr.Sync == nil {
		t.Fatal("missing schedules")
	}
	if mr.Best != nil {
		t.Error("Best built without Options.Best")
	}
	if err := mr.List.Validate(); err != nil {
		t.Error(err)
	}
	if err := mr.Sync.Validate(); err != nil {
		t.Error(err)
	}
	if mr.SyncTime > mr.ListTime {
		t.Errorf("sync %d slower than list %d on the paper's loop", mr.SyncTime, mr.ListTime)
	}
	if lr.DoacrossSource() == "" || lr.Listing() == "" || lr.GraphInfo() == "" {
		t.Error("empty render helpers")
	}
	// Stats must show the stage work.
	for _, st := range b.Stats.Stages {
		if st.Count == 0 {
			t.Errorf("stage %s never ran", st.Stage)
		}
	}
}

func TestRunBest(t *testing.T) {
	b := run(t, corpus(8), Options{Best: true, Machines: dlx.PaperConfigs()})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for _, lr := range b.Loops {
		for _, mr := range lr.Machines {
			if mr.Best == nil {
				t.Fatal("missing Best schedule")
			}
			if mr.BestTime > mr.ListTime || mr.BestTime > mr.SyncTime {
				t.Errorf("%s %s: best %d worse than list %d or sync %d",
					lr.Name, mr.Machine, mr.BestTime, mr.ListTime, mr.SyncTime)
			}
		}
	}
}

// numeric projects the worker-independent portion of a batch result (cache
// hit flags may legitimately differ between runs).
func numeric(b *Batch) string {
	var sb strings.Builder
	for _, lr := range b.Loops {
		fmt.Fprintf(&sb, "%d %s err=%v n=%d", lr.Index, lr.Name, lr.Err, lr.N)
		for _, mr := range lr.Machines {
			fmt.Fprintf(&sb, " [%s key=%s list=%d/%d/%d sync=%d/%d/%d best=%d imp=%.4f]",
				mr.Machine, mr.Key, mr.ListTime, mr.ListStalls, mr.ListLBD,
				mr.SyncTime, mr.SyncStalls, mr.SyncLBD, mr.BestTime, mr.Improvement)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestWorkersDeterminism is the satellite concurrency contract: the same
// batch run with -j 1 and -j 8 yields identical results, with and without a
// shared cache (run under -race in CI).
func TestWorkersDeterminism(t *testing.T) {
	srcs := corpus(32)
	for _, cached := range []bool{false, true} {
		var want string
		for _, workers := range []int{1, 8} {
			opt := Options{Workers: workers, Machines: dlx.PaperConfigs(), Best: true}
			if cached {
				opt.Cache = NewCache()
			}
			b := run(t, srcs, opt)
			if err := b.FirstErr(); err != nil {
				t.Fatal(err)
			}
			got := numeric(b)
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("cached=%v: -j %d diverges from -j 1:\n%s\nvs\n%s", cached, workers, got, want)
			}
		}
	}
}

func TestCacheHitsOnRepeatedShapes(t *testing.T) {
	// The same loop under two names: the second must hit all three memo
	// levels (compile, schedule, timing).
	cache := NewCache()
	b := run(t, []string{fig1, fig1}, Options{Cache: cache})
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.CacheHits != 3 || b.Stats.CacheMisses != 3 {
		t.Errorf("hits/misses = %d/%d, want 3/3", b.Stats.CacheHits, b.Stats.CacheMisses)
	}
	if b.Loops[0].Machines[0].Key != b.Loops[1].Machines[0].Key {
		t.Error("identical loops produced different cache keys")
	}
	if !b.Loops[1].Machines[0].CacheHit {
		t.Error("second loop not marked as a cache hit")
	}
	// A second batch over the same cache hits everything: no stage reruns.
	b2 := run(t, []string{fig1, fig1}, Options{Cache: cache})
	if b2.Stats.CacheHits != 6 || b2.Stats.CacheMisses != 0 {
		t.Errorf("second batch hits/misses = %d/%d, want 6/0", b2.Stats.CacheHits, b2.Stats.CacheMisses)
	}
	for _, st := range b2.Stats.Stages {
		if st.Count != 0 {
			t.Errorf("second batch ran %s %d times, want 0", st.Stage, st.Count)
		}
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	// Different trip counts share schedules but not timings.
	cache := NewCache()
	reqs := []Request{{Source: fig1, N: 10}, {Source: fig1, N: 1000}}
	b, err := Run(reqs, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	// Loop 1 shares the compilation and the schedules but not the timing.
	if b.Stats.CacheHits != 2 {
		t.Errorf("hits = %d, want 2 (compile + schedule shared across N)", b.Stats.CacheHits)
	}
	if n := b.Stats.Stage("schedule").Count; n != 1 {
		t.Errorf("schedule ran %d times, want 1", n)
	}
	if n := b.Stats.Stage("simulate").Count; n != 2 {
		t.Errorf("simulate ran %d times, want 2 (timing keys on N)", n)
	}
	if b.Loops[0].Machines[0].ListTime == b.Loops[1].Machines[0].ListTime {
		t.Error("different trip counts simulated to the same time; timing memo over-shared")
	}
	// Different scheduler options must not share schedules (the compile
	// memo may still hit).
	b2 := run(t, []string{fig1}, Options{Cache: cache, Baseline: 1})
	if n := b2.Stats.Stage("schedule").Count; n != 1 {
		t.Errorf("different baseline reused schedules (schedule ran %d times, want 1)", n)
	}
}

func TestPerLoopErrors(t *testing.T) {
	b := run(t, []string{fig1, "DO I = ,\n"}, Options{})
	if b.Loops[0].Err != nil {
		t.Errorf("good loop failed: %v", b.Loops[0].Err)
	}
	if b.Loops[1].Err == nil {
		t.Error("bad loop succeeded")
	}
	if b.FirstErr() == nil {
		t.Error("FirstErr missed the failure")
	}
	if b.Stats.Stage("parse").Errors != 1 {
		t.Errorf("parse errors = %d, want 1", b.Stats.Stage("parse").Errors)
	}
	if _, err := Run([]Request{{}}, Options{}); err != nil {
		t.Errorf("empty request must fail per-loop, not batch-wide: %v", err)
	}
	if b := run(t, nil, Options{}); len(b.Loops) != 0 {
		t.Error("empty batch produced loops")
	}
}

// TestRequestValidation: malformed requests are rejected up front with a
// structured, positioned diagnostic instead of dying in the parser or the
// simulator.
func TestRequestValidation(t *testing.T) {
	loop := lang.MustParse(fig1)
	b, err := Run([]Request{
		{},                                   // neither Source nor Loop
		{Name: "neg", Source: fig1, N: -5},   // negative trip count
		{Name: "negloop", Loop: loop, N: -1}, // negative trip count, positioned
		{Name: "ok", Source: fig1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, wantMsg := range []string{"neither Source nor Loop", "negative trip count", "negative trip count"} {
		lr := b.Loops[i]
		if lr.Err == nil {
			t.Fatalf("request %d accepted", i)
		}
		d, ok := diag.As(lr.Err)
		if !ok {
			t.Fatalf("request %d error is not a diagnostic: %v", i, lr.Err)
		}
		if d.Stage != "pipeline" {
			t.Errorf("request %d diagnostic stage = %q, want pipeline", i, d.Stage)
		}
		if !strings.Contains(d.Msg, wantMsg) {
			t.Errorf("request %d diagnostic = %q, want mention of %q", i, d.Msg, wantMsg)
		}
	}
	if d, _ := diag.As(b.Loops[2].Err); !d.Pos.IsValid() {
		t.Error("parsed-loop validation diagnostic lost the source position")
	}
	if b.Loops[3].Err != nil {
		t.Errorf("valid request rejected: %v", b.Loops[3].Err)
	}
}

func TestRequestLoopAndNOverride(t *testing.T) {
	loop := lang.MustParse(fig1)
	b, err := Run([]Request{{Name: "parsed", Loop: loop, N: 7}}, Options{N: 50})
	if err != nil {
		t.Fatal(err)
	}
	lr := b.Loops[0]
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	if lr.N != 7 {
		t.Errorf("N override = %d, want 7", lr.N)
	}
	if lr.Name != "parsed" {
		t.Errorf("name = %q", lr.Name)
	}
	if lr.Loop != loop {
		t.Error("parsed loop not used directly")
	}
}

func TestStatsString(t *testing.T) {
	b := run(t, []string{fig1, fig1}, Options{Cache: NewCache()})
	s := b.Stats.String()
	for _, want := range []string{"cache:", "hit rate", "parse", "analyze", "syncinsert", "codegen", "graph", "schedule", "simulate", "latency:"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats report missing %q:\n%s", want, s)
		}
	}
	if b.Stats.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", b.Stats.HitRate())
	}
}

func TestInvalidMachine(t *testing.T) {
	bad := dlx.Config{Issue: 0}
	if _, err := Run([]Request{{Source: fig1}}, Options{Machines: []dlx.Config{bad}}); err == nil {
		t.Error("invalid machine accepted")
	}
}
