package pipeline

import (
	"context"
	"os"
	"testing"

	"doacross/internal/faults"
)

// diskOpt builds the options of a disk-tier test run.
func diskOpt(cache *Cache, disk *DiskStore) Options {
	return Options{Cache: cache, Disk: disk, Workers: 2}
}

// coldRun populates a fresh store from the corpus and returns the batch.
func coldRun(t *testing.T, dir string, srcs []string) (*Batch, *DiskStore) {
	t.Helper()
	store, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := run(t, srcs, diskOpt(NewCache(), store))
	if err := b.FirstErr(); err != nil {
		t.Fatal(err)
	}
	if store.Len() == 0 {
		t.Fatal("cold run persisted nothing")
	}
	return b, store
}

// TestDiskTierWarmRestart is the service restart path: a second process
// opens the same directory, re-verifies and loads every entry, and then
// serves the whole corpus from memory — zero compiles, zero schedules,
// zero simulations in the request-time metrics.
func TestDiskTierWarmRestart(t *testing.T) {
	dir := t.TempDir()
	srcs := corpus(8)
	cold, store := coldRun(t, dir, srcs)
	entries := store.Len()

	store2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := NewCache()
	ls, err := LoadDisk(context.Background(), store2, cache2, diskOpt(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Loaded != entries || ls.Corrupt != 0 || ls.Stale != 0 || ls.Errors != 0 {
		t.Fatalf("load stats = %s, want loaded=%d and nothing else", ls, entries)
	}

	metrics := NewMetrics()
	opt := diskOpt(cache2, store2)
	opt.Metrics = metrics
	warm := run(t, srcs, opt)
	if err := warm.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for i := range warm.Loops {
		mr := warm.Loops[i].Machines[0]
		if !mr.CacheHit {
			t.Errorf("loop %d not served warm", i)
		}
		if err := mr.Sync.Validate(); err != nil {
			t.Errorf("loop %d warm schedule invalid: %v", i, err)
		}
		cold := cold.Loops[i].Machines[0]
		if mr.SyncTime != cold.SyncTime || mr.ListTime != cold.ListTime {
			t.Errorf("loop %d warm times (%d, %d) != cold (%d, %d)",
				i, mr.ListTime, mr.SyncTime, cold.ListTime, cold.SyncTime)
		}
	}
	st := metrics.Stats()
	for _, stage := range []string{StageSchedule, StageSimulate} {
		if n := st.Stage(stage).Count; n != 0 {
			t.Errorf("warm run executed %s %d times, want 0", stage, n)
		}
	}
	// The warm run re-persisted nothing: every problem was already on disk.
	if w := store2.Stats().Writes; w != 0 {
		t.Errorf("warm run wrote %d disk entries, want 0", w)
	}
}

// TestDiskTierCrashRecovery is the crash-safety satellite: after a cold
// run, one entry is bit-flipped and one truncated on disk (a torn write a
// crashed or lying disk could leave). The restarted loader must quarantine
// exactly those two — counted, bytes kept — and bring the rest up warm;
// re-running the corpus recomputes the two lost problems and heals the
// store back to full strength.
func TestDiskTierCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srcs := corpus(8)
	_, store := coldRun(t, dir, srcs)
	entries := store.Len()
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 3 {
		t.Fatalf("corpus persisted only %d entries", len(keys))
	}
	// Flip a payload byte of one entry, truncate another mid-payload.
	flip := store.path(keys[0])
	data, err := os.ReadFile(flip)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(flip, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(store.path(keys[1]), int64(diskHeaderSize+1)); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := NewCache()
	ls, err := LoadDisk(context.Background(), store2, cache2, diskOpt(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Corrupt != 2 {
		t.Errorf("load stats = %s, want corrupt=2", ls)
	}
	if ls.Loaded != entries-2 {
		t.Errorf("load stats = %s, want loaded=%d", ls, entries-2)
	}
	if q := store2.Stats().Quarantined; q != 2 {
		t.Errorf("quarantined = %d, want 2", q)
	}

	// Healing: the same corpus recomputes the two quarantined problems (and
	// only those) and persists them again. One worker, so a repeated loop
	// shape cannot race two concurrent misses of the same problem.
	opt := diskOpt(cache2, store2)
	opt.Workers = 1
	metrics := NewMetrics()
	opt.Metrics = metrics
	warm := run(t, srcs, opt)
	if err := warm.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for i := range warm.Loops {
		if err := warm.Loops[i].Machines[0].Sync.Validate(); err != nil {
			t.Errorf("loop %d served invalid schedule after recovery: %v", i, err)
		}
	}
	if store2.Len() != entries {
		t.Errorf("store healed to %d entries, want %d", store2.Len(), entries)
	}
	if n := metrics.Stats().Stage(StageSchedule).Count; n != 2 {
		t.Errorf("recovery run rescheduled %d problems, want exactly the 2 lost", n)
	}
}

// TestLoadDiskSkipsStale: entries persisted under different scheduling
// options are skipped, not loaded and not quarantined — they are valid
// answers to a different question.
func TestLoadDiskSkipsStale(t *testing.T) {
	dir := t.TempDir()
	_, store := coldRun(t, dir, corpus(4))
	entries := store.Len()

	store2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := diskOpt(nil, nil)
	opt.Sync.NoLazyWaits = true // a different scheduling salt
	ls, err := LoadDisk(context.Background(), store2, NewCache(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Stale != entries || ls.Loaded != 0 || ls.Corrupt != 0 {
		t.Errorf("load stats = %s, want stale=%d loaded=0", ls, entries)
	}
}

// TestLoadDiskRefusesMismatchedKey: an entry refiled under another
// problem's key — valid checksum, valid payload — must fail the
// content-address audit and be quarantined, never served as the other
// problem's answer.
func TestLoadDiskRefusesMismatchedKey(t *testing.T) {
	dir := t.TempDir()
	_, store := coldRun(t, dir, corpus(4))
	keys, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) < 2 {
		t.Fatal("need two entries")
	}
	// Refile entry 0's bytes under entry 1's key.
	data, err := os.ReadFile(store.path(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.path(keys[1]), data, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LoadDisk(context.Background(), store2, NewCache(), diskOpt(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Corrupt != 1 {
		t.Errorf("load stats = %s, want corrupt=1 (content-address mismatch)", ls)
	}
}

// TestDiskTierChaos: seeded disk-io faults on the write path (failed and
// torn writes) and the read path (failed and corrupt reads) never corrupt
// a served result: every request of every run returns the same times a
// disk-free run produces, and the loader's accounting covers every entry.
func TestDiskTierChaos(t *testing.T) {
	srcs := corpus(10)
	reference := run(t, srcs, Options{Workers: 2})
	if err := reference.FirstErr(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		dir := t.TempDir()
		store, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		store.SetFaultHook(faults.MustNew(faults.Plan{
			Seed: seed, DiskFail: 0.2, DiskShortWrite: 0.3,
			Stages: []string{faults.StageDiskWrite},
		}).Probe)
		cold := run(t, srcs, diskOpt(NewCache(), store))
		if err := cold.FirstErr(); err != nil {
			t.Fatalf("seed %d: disk faults failed a request: %v", seed, err)
		}

		// Restart under read-path chaos: corrupt reads quarantine, failed
		// reads are left for the next load, and whatever survives is
		// verified.
		store2, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		store2.SetFaultHook(faults.MustNew(faults.Plan{
			Seed: seed + 100, DiskFail: 0.2, DiskCorrupt: 0.2,
			Stages: []string{faults.StageDiskRead},
		}).Probe)
		cache2 := NewCache()
		ls, err := LoadDisk(context.Background(), store2, cache2, diskOpt(nil, nil))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ls.Loaded+ls.Stale+ls.Corrupt+ls.Errors != ls.Scanned {
			t.Errorf("seed %d: load accounting does not cover the scan: %s", seed, ls)
		}
		store2.SetFaultHook(nil)
		warm := run(t, srcs, diskOpt(cache2, store2))
		if err := warm.FirstErr(); err != nil {
			t.Fatalf("seed %d: warm run failed: %v", seed, err)
		}
		for i := range warm.Loops {
			w, r := warm.Loops[i].Machines[0], reference.Loops[i].Machines[0]
			if w.SyncTime != r.SyncTime || w.ListTime != r.ListTime {
				t.Errorf("seed %d loop %d: chaos-surviving times (%d, %d) != reference (%d, %d)",
					seed, i, w.ListTime, w.SyncTime, r.ListTime, r.SyncTime)
			}
			if err := w.Sync.Validate(); err != nil {
				t.Errorf("seed %d loop %d: invalid schedule served: %v", seed, i, err)
			}
		}
	}
}
