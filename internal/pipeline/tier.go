package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"doacross/internal/check"
	"doacross/internal/core"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/passes"
)

// The persistent tier stores one self-contained entry per verified
// scheduling outcome: the loop source, the option salts it was compiled and
// scheduled under, the machine, the trip count, the schedules (as issue
// rows — everything else is rederived) and the simulated timings. An entry
// is enough to rebuild all three in-memory cache levels (compile memo,
// schedule entry, time entry) without trusting anything but the source
// text: the compiled program and graph are recomputed, the schedules are
// re-verified by internal/check, and the recomputed content address must
// match the filename the entry was stored under.
//
// Degraded results, budget-exhausted exact results and anything that failed
// verification are never persisted, mirroring the in-memory cache's
// verify-before-publish rule.

// diskSchedule is the persisted form of one core.Schedule: the issue rows
// (Rows[c] = node indices issued at cycle c, in issue order) and the
// producing method name. Cycle is rederived from Rows on load.
type diskSchedule struct {
	Method string  `json:"method"`
	Rows   [][]int `json:"rows"`
}

// diskTimes is the persisted form of a timeEntry.
type diskTimes struct {
	ListTime, SyncTime, BestTime int
	ListStalls, SyncStalls       int
	ListLBD, SyncLBD             int
	ListLFD, SyncLFD             int
	ListSignals, SyncSignals     int
}

// diskPayload is the JSON payload of one persistent-tier entry.
type diskPayload struct {
	Name        string        `json:"name"`
	Source      string        `json:"source"`
	CompileSalt string        `json:"compile_salt"`
	SchedSalt   string        `json:"sched_salt"`
	ExactSalt   string        `json:"exact_salt"`
	Machine     dlx.Config    `json:"machine"`
	N           int           `json:"n"`
	Window      int           `json:"window"`
	Backend     string        `json:"backend"`
	List        *diskSchedule `json:"list"`
	Sync        *diskSchedule `json:"sync"`
	Best        *diskSchedule `json:"best,omitempty"`
	PredictedT  int           `json:"predicted_t"`
	PredictedAt int           `json:"predicted_at_n,omitempty"`
	Optimal     bool          `json:"optimal,omitempty"`
	LowerBound  int           `json:"lower_bound,omitempty"`
	SearchNodes int64         `json:"search_nodes,omitempty"`
	Note        string        `json:"note,omitempty"`
	Times       diskTimes     `json:"times"`
}

// diskKey is the content address of a persisted entry: the scheduling
// problem (graph fingerprint + machine + scheduler salt) plus the
// simulation coordinates, in a key space disjoint from the "sched"/"time"
// in-memory keys.
func diskKey(fp dfg.Fingerprint, cfg dlx.Config, salt, nwSalt, exSalt string) dfg.Fingerprint {
	return dfg.KeyFrom(fp, cfg, "disk", salt, nwSalt, exSalt)
}

// toDisk snapshots a schedule for persistence (nil in, nil out).
func toDisk(s *core.Schedule) *diskSchedule {
	if s == nil {
		return nil
	}
	return &diskSchedule{Method: s.Method, Rows: s.Rows}
}

// rebuild reconstructs a core.Schedule from its persisted rows over a
// freshly recompiled program and graph. It validates only the indexing
// shape needed to build the struct; semantic verification is
// check.VerifyLoaded's job.
func (d *diskSchedule) rebuild(prog *core.Schedule) (*core.Schedule, error) {
	n := len(prog.Prog.Instrs)
	cycle := make([]int, n)
	for i := range cycle {
		cycle[i] = -1
	}
	for c, row := range d.Rows {
		for _, v := range row {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("row %d references unknown instruction %d", c, v)
			}
			if cycle[v] != -1 {
				return nil, fmt.Errorf("instruction %d scheduled twice", v)
			}
			cycle[v] = c
		}
	}
	for i, c := range cycle {
		if c == -1 {
			return nil, fmt.Errorf("instruction %d never scheduled", i)
		}
	}
	return &core.Schedule{
		Prog:   prog.Prog,
		Graph:  prog.Graph,
		Cfg:    prog.Cfg,
		Cycle:  cycle,
		Rows:   d.Rows,
		Method: d.Method,
	}, nil
}

// persistResult writes one fresh, verified, cacheable machine result to the
// disk tier. Persistence failures are counted by the store and never fail
// the request — the disk tier is an optimization, not a dependency.
func persistResult(d *DiskStore, name, src string, opt Options, cfg dlx.Config,
	fp dfg.Fingerprint, n int, entry *schedEntry, times *timeEntry) {
	salt := opt.salt()
	exSalt := opt.exactSalt(n)
	nwSalt := fmt.Sprintf("n=%d w=%d", n, opt.Window)
	p := diskPayload{
		Name:        name,
		Source:      src,
		CompileSalt: opt.compileSalt(),
		SchedSalt:   salt,
		ExactSalt:   exSalt,
		Machine:     cfg,
		N:           n,
		Window:      opt.Window,
		Backend:     entry.backend,
		List:        toDisk(entry.list),
		Sync:        toDisk(entry.sync),
		Best:        toDisk(entry.best),
		PredictedT:  entry.predictedT,
		PredictedAt: entry.predictedAtN,
		Optimal:     entry.optimal,
		LowerBound:  entry.lowerBound,
		SearchNodes: entry.searchNodes,
		Note:        entry.note,
		Times: diskTimes{
			ListTime: times.listTime, SyncTime: times.syncTime, BestTime: times.bestTime,
			ListStalls: times.listStalls, SyncStalls: times.syncStalls,
			ListLBD: times.listLBD, SyncLBD: times.syncLBD,
			ListLFD: times.listLFD, SyncLFD: times.syncLFD,
			ListSignals: times.listSignals, SyncSignals: times.syncSignals,
		},
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return
	}
	// Put's error is reflected in the store's WriteErrors counter.
	_ = d.Put(diskKey(fp, cfg, salt, nwSalt, exSalt), payload)
}

// LoadStats summarizes one LoadDisk pass.
type LoadStats struct {
	// Scanned counts entries visited; Loaded the entries that passed every
	// check and were published to the in-memory cache.
	Scanned, Loaded int
	// Stale counts well-formed entries skipped because they were produced
	// under different options (salts or window) than opt's.
	Stale int
	// Corrupt counts entries that failed integrity or semantic verification
	// and were quarantined.
	Corrupt int
	// Errors counts entries skipped on transient read failures (left on
	// disk for the next load).
	Errors int
}

// String renders the load summary.
func (ls LoadStats) String() string {
	return fmt.Sprintf("scanned=%d loaded=%d stale=%d corrupt=%d errors=%d",
		ls.Scanned, ls.Loaded, ls.Stale, ls.Corrupt, ls.Errors)
}

// LoadDisk restores the persistent tier into the in-memory cache, so a
// restarted service comes up warm. Every entry is re-earned, never
// trusted:
//
//  1. The store's checksum and header must validate (torn writes, bit rot).
//  2. The entry's option salts and window must match opt's — entries
//     written under other configurations are skipped as stale.
//  3. The loop source is recompiled through the pass manager (sharing
//     compilations via cache) and the persisted issue rows are rebuilt
//     into schedules over the fresh program and graph.
//  4. The rebuilt set passes check.VerifyLoaded — the same independent
//     verifier fresh schedules must pass — including the timing audit of
//     the persisted simulated times.
//  5. The entry's recomputed content address must equal the key it was
//     stored under, so an entry cannot impersonate another problem.
//
// Entries failing 1, 3, 4 or 5 are quarantined and counted. On success the
// compile memo, schedule entry and time entry are published to cache under
// the same keys a live run would use: subsequent requests for the loop are
// pure memory hits, with zero recompiles and zero reschedules.
//
// The compilations LoadDisk performs are deliberately not traced into any
// metrics registry: they are warmup verification work, not served traffic.
func LoadDisk(ctx context.Context, d *DiskStore, cache *Cache, opt Options) (LoadStats, error) {
	var ls LoadStats
	if d == nil || cache == nil {
		return ls, errors.New("pipeline: LoadDisk needs a store and a cache")
	}
	keys, err := d.Keys()
	if err != nil {
		return ls, err
	}
	compileSalt := opt.compileSalt()
	schedSalt := opt.salt()
	for _, k := range keys {
		if ctx.Err() != nil {
			return ls, ctx.Err()
		}
		ls.Scanned++
		payload, err := d.Get(k)
		var ce *CorruptEntryError
		switch {
		case err == nil:
		case errors.As(err, &ce):
			ls.Corrupt++
			_ = d.Quarantine(k)
			continue
		case errors.Is(err, os.ErrNotExist):
			continue // raced with quarantine/replacement; nothing to load
		default:
			ls.Errors++
			continue
		}
		quarantine := func() {
			ls.Corrupt++
			d.corrupt.Add(1)
			_ = d.Quarantine(k)
		}
		var p diskPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			quarantine()
			continue
		}
		if p.CompileSalt != compileSalt || p.SchedSalt != schedSalt || p.Window != opt.Window {
			ls.Stale++
			continue
		}
		if p.Source == "" || p.Sync == nil || p.List == nil || p.N < 1 ||
			p.Machine.Validate() != nil {
			quarantine()
			continue
		}
		// Recompile the source (through the memo: repeated loops compile
		// once per load). The compilation is the ground truth the persisted
		// rows are verified against.
		srcKey := sourceKey(p.Source, compileSalt)
		var compiled *compileEntry
		if v, ok := cache.Get(srcKey); ok {
			compiled = v.(*compileEntry)
		} else {
			popts := opt.Compile
			popts.Tracer = nil
			popts.FaultHook = nil
			popts.Observer = nil
			popts.Request = ""
			pctx, err := passes.New(popts).RunSourceCtx(ctx, p.Source)
			if err != nil {
				if ctx.Err() != nil {
					return ls, ctx.Err()
				}
				quarantine()
				continue
			}
			lint := pctx.LintFindings
			if !opt.Compile.Verify {
				lint = append(check.Lint(pctx.Loop), check.LintSync(pctx.Sync)...)
			}
			compiled = &compileEntry{
				loop: pctx.Loop, analysis: pctx.Analysis, syncLoop: pctx.Sync,
				prog: pctx.Code, graph: pctx.Graph, trace: pctx.Trace, diags: pctx.Diags,
				lint: lint,
			}
			v, _ := cache.Put(srcKey, compiled)
			compiled = v.(*compileEntry)
		}
		// Rebuild the schedules over the fresh program and graph.
		base := &core.Schedule{Prog: compiled.prog, Graph: compiled.graph, Cfg: p.Machine}
		rebuildAll := func() (list, sync, best *core.Schedule, err error) {
			if list, err = p.List.rebuild(base); err != nil {
				return nil, nil, nil, err
			}
			if sync, err = p.Sync.rebuild(base); err != nil {
				return nil, nil, nil, err
			}
			if p.Best != nil {
				if best, err = p.Best.rebuild(base); err != nil {
					return nil, nil, nil, err
				}
			}
			return list, sync, best, nil
		}
		list, sync, best, err := rebuildAll()
		if err != nil {
			quarantine()
			continue
		}
		// Independent semantic verification: the restored schedules must
		// pass exactly the checks fresh ones do, timing audit included.
		if err := check.Err(check.VerifyLoaded(list, sync, best, p.Times.SyncTime, p.N)); err != nil {
			quarantine()
			continue
		}
		// Content-address audit: the key recomputed from the entry's own
		// contents must be the key it was filed under.
		fp := compiled.graph.Fingerprint()
		nwSalt := fmt.Sprintf("n=%d w=%d", p.N, p.Window)
		if diskKey(fp, p.Machine, schedSalt, nwSalt, p.ExactSalt) != k {
			quarantine()
			continue
		}
		entry := &schedEntry{
			list: list, sync: sync, best: best,
			backend:      p.Backend,
			predictedT:   p.PredictedT,
			predictedAtN: p.PredictedAt,
			optimal:      p.Optimal,
			lowerBound:   p.LowerBound,
			searchNodes:  p.SearchNodes,
			note:         p.Note,
		}
		if !entry.cacheable() {
			// A budget-exhausted exact result should never have been
			// persisted; refuse to launder it into the cache.
			quarantine()
			continue
		}
		var schedK dfg.Fingerprint
		if p.ExactSalt != "" {
			schedK = dfg.KeyFrom(fp, p.Machine, "sched", schedSalt, p.ExactSalt)
		} else {
			schedK = dfg.KeyFrom(fp, p.Machine, "sched", schedSalt)
		}
		cache.Put(schedK, entry)
		cache.Put(dfg.KeyFrom(fp, p.Machine, "time", schedSalt, nwSalt, p.ExactSalt), &timeEntry{
			listTime: p.Times.ListTime, syncTime: p.Times.SyncTime, bestTime: p.Times.BestTime,
			listStalls: p.Times.ListStalls, syncStalls: p.Times.SyncStalls,
			listLBD: p.Times.ListLBD, syncLBD: p.Times.SyncLBD,
			listLFD: p.Times.ListLFD, syncLFD: p.Times.SyncLFD,
			listSignals: p.Times.ListSignals, syncSignals: p.Times.SyncSignals,
		})
		ls.Loaded++
	}
	return ls, nil
}
