package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doacross/internal/dfg"
)

func flightKey(b byte) dfg.Fingerprint {
	var k dfg.Fingerprint
	k[0] = b
	return k
}

// waitFor polls cond until it holds or the deadline passes — the
// deterministic alternative to sleeping a guessed duration.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCoalesces: N concurrent Do calls of one key run the function
// exactly once; N-1 report coalesced.
func TestGroupCoalesces(t *testing.T) {
	var g Group
	const n = 8
	release := make(chan struct{})
	var runs atomic.Int64
	fn := func(ctx context.Context) (any, error) {
		runs.Add(1)
		<-release
		return "result", nil
	}
	var wg sync.WaitGroup
	var coalescedCount atomic.Int64
	results := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, coalesced := g.Do(context.Background(), flightKey(1), fn)
			results[i], errs[i] = v, err
			if coalesced {
				coalescedCount.Add(1)
			}
		}(i)
	}
	// Release only after every caller joined the flight: that is what makes
	// the coalesced count exact rather than racy.
	waitFor(t, "all callers to join", func() bool {
		flights, waiters := g.Stats()
		return flights == 1 && waiters == n
	})
	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != "result" {
			t.Errorf("caller %d: (%v, %v)", i, results[i], errs[i])
		}
	}
	if got := coalescedCount.Load(); got != n-1 {
		t.Errorf("coalesced = %d, want %d", got, n-1)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if flights, waiters := g.Stats(); flights != 0 || waiters != 0 {
		t.Errorf("flights leaked: %d flights, %d waiters", flights, waiters)
	}
	// The flight is gone: a new Do starts fresh.
	v, err, coalesced := g.Do(context.Background(), flightKey(1), func(context.Context) (any, error) {
		return "fresh", nil
	})
	if v != "fresh" || err != nil || coalesced {
		t.Errorf("post-completion Do = (%v, %v, %v)", v, err, coalesced)
	}
}

// TestGroupDistinctKeys: different keys never coalesce.
func TestGroupDistinctKeys(t *testing.T) {
	var g Group
	var runs atomic.Int64
	var wg sync.WaitGroup
	for i := byte(0); i < 4; i++ {
		wg.Add(1)
		go func(i byte) {
			defer wg.Done()
			_, _, coalesced := g.Do(context.Background(), flightKey(i), func(context.Context) (any, error) {
				runs.Add(1)
				return nil, nil
			})
			if coalesced {
				t.Errorf("key %d coalesced with another key", i)
			}
		}(i)
	}
	wg.Wait()
	if got := runs.Load(); got != 4 {
		t.Errorf("fn ran %d times, want 4", got)
	}
}

// TestGroupDeadlineInheritance: a joiner without a deadline lifts the
// flight's bound, so the leader's short deadline expires the leader's wait
// but not the computation — the patient follower still gets the result.
func TestGroupDeadlineInheritance(t *testing.T) {
	var g Group
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return "late result", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	leaderCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	leaderDone := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(leaderCtx, flightKey(1), fn)
		leaderDone <- err
	}()
	waitFor(t, "leader to start the flight", func() bool {
		flights, _ := g.Stats()
		return flights == 1
	})
	followerDone := make(chan struct{})
	var followerVal any
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, followerErr, _ = g.Do(context.Background(), flightKey(1), fn)
	}()
	waitFor(t, "follower to join", func() bool {
		_, waiters := g.Stats()
		return waiters == 2
	})
	// The leader's own deadline fires: it gets its context error on time.
	if err := <-leaderDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("leader error = %v, want DeadlineExceeded", err)
	}
	// Well past the leader's deadline the flight must still be running,
	// because the follower joined without a deadline.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-followerDone:
		t.Fatal("follower finished before release: the flight was cancelled by the leader's deadline")
	default:
	}
	close(release)
	<-followerDone
	if followerErr != nil || followerVal != "late result" {
		t.Errorf("follower = (%v, %v), want (late result, nil)", followerVal, followerErr)
	}
}

// TestGroupLastAbandonerCancels: when every waiter gives up, the flight's
// context is cancelled — nobody wants the result, so the work stops.
func TestGroupLastAbandonerCancels(t *testing.T) {
	var g Group
	flightCancelled := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		<-ctx.Done()
		close(flightCancelled)
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, flightKey(1), fn)
		done <- err
	}()
	waitFor(t, "flight to start", func() bool {
		flights, _ := g.Stats()
		return flights == 1
	})
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoner error = %v, want Canceled", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never cancelled after the last waiter left")
	}
}

// TestGroupPanicShared: a panicking flight delivers an error to every
// waiter instead of poisoning the group.
func TestGroupPanicShared(t *testing.T) {
	var g Group
	_, err, _ := g.Do(context.Background(), flightKey(1), func(context.Context) (any, error) {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicked flight returned err = %v", err)
	}
	if flights, _ := g.Stats(); flights != 0 {
		t.Error("panicked flight leaked")
	}
	// The group still works.
	v, err, _ := g.Do(context.Background(), flightKey(1), func(context.Context) (any, error) {
		return "ok", nil
	})
	if v != "ok" || err != nil {
		t.Errorf("post-panic Do = (%v, %v)", v, err)
	}
}

// TestGroupLaterDeadlineWins: among bounded joiners the latest deadline
// governs the flight: it outlives the leader's shorter deadline.
func TestGroupLaterDeadlineWins(t *testing.T) {
	var g Group
	release := make(chan struct{})
	defer close(release)
	fn := func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return "v", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	shortCtx, cancelShort := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelShort()
	longCtx, cancelLong := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelLong()
	go g.Do(shortCtx, flightKey(1), fn)
	waitFor(t, "flight to start", func() bool { f, _ := g.Stats(); return f == 1 })
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(longCtx, flightKey(1), fn)
		done <- err
	}()
	waitFor(t, "second caller to join", func() bool { _, w := g.Stats(); return w == 2 })
	// Past the short deadline, the flight must still be alive under the
	// long joiner's inherited deadline.
	time.Sleep(40 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("long waiter finished early with %v: short deadline cancelled the flight", err)
	default:
	}
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Errorf("long waiter error = %v", err)
	}
}
