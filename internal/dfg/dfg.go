// Package dfg builds the data-flow graph of §3.1: the dependence graph of
// one compiled DOACROSS iteration, augmented with the extra synchronization
// arcs that make the two synchronization conditions structural:
//
//   - an arc from each dependence-source store to its Send_Signal (a Sig can
//     not precede the corresponding Src), and
//   - an arc from each Wait_Signal to its dependence-sink load/store (a Wat
//     can not be behind the corresponding Snk).
//
// On top of the graph the package computes the paper's partition into Sig,
// Wat, Sigwat and plain components, and the synchronization paths
// SP(Wat, Sig) — shortest directed paths from a wait to its paired send
// inside a Sigwat component.
package dfg

import (
	"fmt"
	"sort"

	"doacross/internal/dep"
	"doacross/internal/tac"
)

// ArcKind classifies a dependence arc.
type ArcKind int

// Arc kinds.
const (
	// Data is a register def-use arc.
	Data ArcKind = iota
	// Mem is a loop-independent memory dependence arc (flow/anti/output at
	// distance 0 within the iteration).
	Mem
	// SrcToSend is the synchronization-condition arc source-store → send.
	SrcToSend
	// WaitToSnk is the synchronization-condition arc wait → sink.
	WaitToSnk
)

// String names the arc kind.
func (k ArcKind) String() string {
	switch k {
	case Data:
		return "data"
	case Mem:
		return "mem"
	case SrcToSend:
		return "src->send"
	case WaitToSnk:
		return "wait->snk"
	}
	return fmt.Sprintf("ArcKind(%d)", int(k))
}

// Arc is one directed dependence arc between instruction indices.
type Arc struct {
	From, To int
	Kind     ArcKind
}

// CompKind classifies a weakly connected component per §3.1.
type CompKind int

// Component kinds.
const (
	Plain  CompKind = iota
	Sig             // contains sends only
	Wat             // contains waits only
	Sigwat          // contains both
)

// String names the component kind.
func (k CompKind) String() string {
	switch k {
	case Plain:
		return "plain"
	case Sig:
		return "Sig"
	case Wat:
		return "Wat"
	case Sigwat:
		return "Sigwat"
	}
	return fmt.Sprintf("CompKind(%d)", int(k))
}

// Component is one weakly connected component of the graph.
type Component struct {
	ID    int
	Kind  CompKind
	Nodes []int // instruction indices, ascending
	Waits []int
	Sends []int
}

// SyncPath is a synchronization path SP(Wat, Sig): the shortest directed
// path from a wait to its corresponding send within a Sigwat component.
type SyncPath struct {
	// Wait and Send are the endpoint instruction indices.
	Wait, Send int
	// Nodes is the path, wait first, send last.
	Nodes []int
	// Distance is the dependence distance d of the pair.
	Distance int
	// Signal is the signal name.
	Signal string
	// Comp is the owning component ID.
	Comp int
}

// Weight is the paper's ordering key (n/d)·|SP| divided by n: |SP|/d. Paths
// are scheduled in descending Weight order.
func (p SyncPath) Weight() float64 { return float64(len(p.Nodes)) / float64(p.Distance) }

// Graph is the augmented data-flow graph of one iteration.
type Graph struct {
	Prog *tac.Program
	// Succ and Pred are adjacency lists over instruction indices
	// (0-based positions in Prog.Instrs).
	Succ, Pred [][]int
	// Arcs lists every arc with its kind.
	Arcs []Arc

	comps []Component
	// compOf maps node -> component ID.
	compOf []int
	paths  []SyncPath
}

// Build constructs the graph for a compiled program. The dependence analysis
// must be the one the program's synchronized loop was built from.
func Build(p *tac.Program, a *dep.Analysis) (*Graph, error) {
	n := len(p.Instrs)
	g := &Graph{Prog: p, Succ: make([][]int, n), Pred: make([][]int, n)}
	seen := map[[2]int]bool{}
	addArc := func(from, to int, kind ArcKind) {
		if from == to {
			return
		}
		key := [2]int{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		g.Succ[from] = append(g.Succ[from], to)
		g.Pred[to] = append(g.Pred[to], from)
		g.Arcs = append(g.Arcs, Arc{From: from, To: to, Kind: kind})
	}

	// 1. Register def-use arcs. Each temp has exactly one definition.
	defOf := make(map[int]int) // temp -> defining node
	for i, in := range p.Instrs {
		if in.Dst != 0 {
			if prev, dup := defOf[in.Dst]; dup {
				return nil, fmt.Errorf("dfg: temp t%d defined twice (instrs %d and %d)", in.Dst, prev+1, i+1)
			}
			defOf[in.Dst] = i
		}
	}
	for i, in := range p.Instrs {
		for _, t := range in.Uses() {
			d, ok := defOf[t]
			if !ok {
				return nil, fmt.Errorf("dfg: instr %d uses undefined temp t%d", i+1, t)
			}
			if d >= i {
				return nil, fmt.Errorf("dfg: instr %d uses temp t%d defined later (instr %d)", i+1, t, d+1)
			}
			addArc(d, i, Data)
		}
	}

	// 2. Loop-independent memory dependence arcs from the analysis.
	refInstr := func(r dep.Ref) (*tac.Instr, bool) {
		if r.Array != nil {
			if r.Merge {
				in, ok := p.MergeLoad[r.Array]
				return in, ok
			}
			in, ok := p.ArrayInstr[r.Array]
			return in, ok
		}
		in, ok := p.ScalarInstr[tac.ScalarKey{Stmt: r.Stmt, Name: r.ScalarName, Write: r.Write}]
		return in, ok
	}
	for _, d := range a.Deps {
		if d.Distance != 0 {
			continue
		}
		src, ok1 := refInstr(d.Src)
		snk, ok2 := refInstr(d.Snk)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("dfg: dependence %v has unmapped reference", d)
		}
		addArc(src.ID-1, snk.ID-1, Mem)
	}

	// 3. Synchronization-condition arcs for every synchronized dependence.
	waitIdx := func(stmt int, signal string, dist int) (int, bool) {
		for i, in := range p.Instrs {
			if in.Op == tac.Wait && in.Stmt == stmt && in.Signal == signal && in.SigDist == dist {
				return i, true
			}
		}
		return 0, false
	}
	for _, d := range p.Sync.Synced {
		label := p.Sync.Base.Body[d.Src.Stmt].Label
		send := p.SendFor(label)
		if send == nil {
			return nil, fmt.Errorf("dfg: missing send for signal %s", label)
		}
		srcIn, ok := refInstr(d.Src)
		if !ok {
			return nil, fmt.Errorf("dfg: dependence %v source unmapped", d)
		}
		addArc(srcIn.ID-1, send.ID-1, SrcToSend)
		wi, ok := waitIdx(d.Snk.Stmt, label, d.Distance)
		if !ok {
			return nil, fmt.Errorf("dfg: missing wait for %v", d)
		}
		snkIn, ok := refInstr(d.Snk)
		if !ok {
			return nil, fmt.Errorf("dfg: dependence %v sink unmapped", d)
		}
		addArc(wi, snkIn.ID-1, WaitToSnk)
	}

	g.computeComponents()
	g.computePaths()
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Succ) }

// computeComponents finds weakly connected components (union-find) and
// classifies them.
func (g *Graph) computeComponents() {
	n := g.N()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, a := range g.Arcs {
		union(a.From, a.To)
	}
	rootToComp := map[int]int{}
	g.compOf = make([]int, n)
	for i := 0; i < n; i++ {
		r := find(i)
		id, ok := rootToComp[r]
		if !ok {
			id = len(g.comps)
			rootToComp[r] = id
			g.comps = append(g.comps, Component{ID: id})
		}
		c := &g.comps[id]
		c.Nodes = append(c.Nodes, i)
		g.compOf[i] = id
		switch g.Prog.Instrs[i].Op {
		case tac.Wait:
			c.Waits = append(c.Waits, i)
		case tac.Send:
			c.Sends = append(c.Sends, i)
		}
	}
	for i := range g.comps {
		c := &g.comps[i]
		switch {
		case len(c.Waits) > 0 && len(c.Sends) > 0:
			c.Kind = Sigwat
		case len(c.Sends) > 0:
			c.Kind = Sig
		case len(c.Waits) > 0:
			c.Kind = Wat
		default:
			c.Kind = Plain
		}
	}
}

// computePaths finds SP(Wat, Sig) for every synchronization pair whose wait
// and send fall in the same Sigwat component and are connected by a directed
// path. Paths are sorted by descending weight |SP|/d (the paper's
// (n/d)·|SP| with the common factor n dropped), ties broken by wait index.
func (g *Graph) computePaths() {
	for _, c := range g.comps {
		if c.Kind != Sigwat {
			continue
		}
		for _, w := range c.Waits {
			win := g.Prog.Instrs[w]
			for _, s := range c.Sends {
				sin := g.Prog.Instrs[s]
				if sin.Signal != win.Signal {
					continue
				}
				if nodes := g.shortestPath(w, s); nodes != nil {
					g.paths = append(g.paths, SyncPath{
						Wait: w, Send: s, Nodes: nodes,
						Distance: win.SigDist, Signal: win.Signal, Comp: c.ID,
					})
				}
			}
		}
	}
	sort.SliceStable(g.paths, func(i, j int) bool {
		wi, wj := g.paths[i].Weight(), g.paths[j].Weight()
		if wi != wj {
			return wi > wj
		}
		return g.paths[i].Wait < g.paths[j].Wait
	})
}

// shortestPath returns the node sequence of a shortest directed path from
// src to dst, or nil if none exists.
func (g *Graph) shortestPath(src, dst int) []int {
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			var path []int
			for x := dst; ; x = prev[x] {
				path = append(path, x)
				if x == src {
					break
				}
			}
			// Reverse.
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, w := range g.Succ[v] {
			if prev[w] == -1 {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// Components returns the weakly connected components.
func (g *Graph) Components() []Component { return g.comps }

// ComponentOf returns the component ID of a node.
func (g *Graph) ComponentOf(node int) int { return g.compOf[node] }

// Component returns the component with the given ID.
func (g *Graph) Component(id int) Component { return g.comps[id] }

// SyncPaths returns the synchronization paths in scheduling order
// (descending |SP|/d).
func (g *Graph) SyncPaths() []SyncPath { return g.paths }

// Topological returns a topological order of all nodes (by Kahn's algorithm,
// smallest instruction index first among ready nodes, so program order is a
// fixpoint). An error is returned if the graph has a cycle, which would
// indicate a builder bug.
func (g *Graph) Topological() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Pred[i])
	}
	// Min-heap replaced by simple ordered scan: n is small (loop bodies).
	var order []int
	used := make([]bool, n)
	for len(order) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				picked = i
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("dfg: dependence cycle detected")
		}
		used[picked] = true
		order = append(order, picked)
		for _, w := range g.Succ[picked] {
			indeg[w]--
		}
	}
	return order, nil
}

// CriticalPathLengths returns, for every node, the length (in latency-
// weighted cycles) of the longest path from the node to any sink, using the
// supplied latency function. Classic list-scheduling priority.
func (g *Graph) CriticalPathLengths(latency func(*tac.Instr) int) ([]int, error) {
	order, err := g.Topological()
	if err != nil {
		return nil, err
	}
	n := g.N()
	dist := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		lat := latency(g.Prog.Instrs[v])
		best := 0
		for _, w := range g.Succ[v] {
			if dist[w] > best {
				best = dist[w]
			}
		}
		dist[v] = lat + best
	}
	return dist, nil
}

// Ancestors returns the set of nodes from which the given node is reachable
// (excluding the node itself).
func (g *Graph) Ancestors(node int) map[int]bool {
	out := map[int]bool{}
	var stack []int
	for _, p := range g.Pred[node] {
		stack = append(stack, p)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[v] {
			continue
		}
		out[v] = true
		for _, p := range g.Pred[v] {
			if !out[p] {
				stack = append(stack, p)
			}
		}
	}
	return out
}

// PairArcs returns the artificial send→wait arcs the new scheduler adds to
// convert cross-component synchronization pairs to LFD (§3.2: Sig graphs are
// scheduled before, and Wat graphs after, all Sigwat graphs). Following the
// paper, an arc is added exactly when the wait lives in a Wat component or
// the send lives in a Sig component. This is provably acyclic: an added arc
// can only leave a component that contains a send and enter one that
// contains a wait, Sig components contain no waits and Wat components no
// sends, so every added-arc chain is Sig → Sigwat → Wat and terminates.
// Sigwat↔Sigwat cross pairs (which can be mutually recursive) are left to
// the priority heuristic.
func (g *Graph) PairArcs() []Arc {
	var out []Arc
	for i, in := range g.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := g.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		s := send.ID - 1
		if g.compOf[s] == g.compOf[i] {
			continue
		}
		waitComp := g.comps[g.compOf[i]].Kind
		sendComp := g.comps[g.compOf[s]].Kind
		if waitComp == Wat || sendComp == Sig {
			out = append(out, Arc{From: s, To: i, Kind: SrcToSend})
		}
	}
	return out
}

// SyncInfo summarizes the graph for reports.
func (g *Graph) SyncInfo() string {
	counts := map[CompKind]int{}
	for _, c := range g.comps {
		counts[c.Kind]++
	}
	return fmt.Sprintf("%d nodes, %d arcs, components: %d Sigwat, %d Sig, %d Wat, %d plain; %d sync paths",
		g.N(), len(g.Arcs), counts[Sigwat], counts[Sig], counts[Wat], counts[Plain], len(g.paths))
}
