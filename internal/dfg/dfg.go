// Package dfg builds the data-flow graph of §3.1: the dependence graph of
// one compiled DOACROSS iteration, augmented with the extra synchronization
// arcs that make the two synchronization conditions structural:
//
//   - an arc from each dependence-source store to its Send_Signal (a Sig can
//     not precede the corresponding Src), and
//   - an arc from each Wait_Signal to its dependence-sink load/store (a Wat
//     can not be behind the corresponding Snk).
//
// On top of the graph the package computes the paper's partition into Sig,
// Wat, Sigwat and plain components, and the synchronization paths
// SP(Wat, Sig) — shortest directed paths from a wait to its paired send
// inside a Sigwat component.
package dfg

import (
	"fmt"
	"sort"

	"doacross/internal/bitset"
	"doacross/internal/dep"
	"doacross/internal/tac"
)

// ArcKind classifies a dependence arc.
type ArcKind int

// Arc kinds.
const (
	// Data is a register def-use arc.
	Data ArcKind = iota
	// Mem is a loop-independent memory dependence arc (flow/anti/output at
	// distance 0 within the iteration).
	Mem
	// SrcToSend is the synchronization-condition arc source-store → send.
	SrcToSend
	// WaitToSnk is the synchronization-condition arc wait → sink.
	WaitToSnk
)

// String names the arc kind.
func (k ArcKind) String() string {
	switch k {
	case Data:
		return "data"
	case Mem:
		return "mem"
	case SrcToSend:
		return "src->send"
	case WaitToSnk:
		return "wait->snk"
	}
	return fmt.Sprintf("ArcKind(%d)", int(k))
}

// Arc is one directed dependence arc between instruction indices.
type Arc struct {
	From, To int
	Kind     ArcKind
}

// CompKind classifies a weakly connected component per §3.1.
type CompKind int

// Component kinds.
const (
	Plain  CompKind = iota
	Sig             // contains sends only
	Wat             // contains waits only
	Sigwat          // contains both
)

// String names the component kind.
func (k CompKind) String() string {
	switch k {
	case Plain:
		return "plain"
	case Sig:
		return "Sig"
	case Wat:
		return "Wat"
	case Sigwat:
		return "Sigwat"
	}
	return fmt.Sprintf("CompKind(%d)", int(k))
}

// Component is one weakly connected component of the graph.
type Component struct {
	ID    int
	Kind  CompKind
	Nodes []int // instruction indices, ascending
	Waits []int
	Sends []int
}

// SyncPath is a synchronization path SP(Wat, Sig): the shortest directed
// path from a wait to its corresponding send within a Sigwat component.
type SyncPath struct {
	// Wait and Send are the endpoint instruction indices.
	Wait, Send int
	// Nodes is the path, wait first, send last.
	Nodes []int
	// Distance is the dependence distance d of the pair.
	Distance int
	// Signal is the signal name.
	Signal string
	// Comp is the owning component ID.
	Comp int
}

// Weight is the paper's ordering key (n/d)·|SP| divided by n: |SP|/d. Paths
// are scheduled in descending Weight order.
func (p SyncPath) Weight() float64 { return float64(len(p.Nodes)) / float64(p.Distance) }

// Graph is the augmented data-flow graph of one iteration.
type Graph struct {
	Prog *tac.Program
	// Succ and Pred are adjacency lists over instruction indices
	// (0-based positions in Prog.Instrs).
	Succ, Pred [][]int
	// Arcs lists every arc with its kind.
	Arcs []Arc

	comps []Component
	// compOf maps node -> component ID.
	compOf []int
	paths  []SyncPath
}

// Build constructs the graph for a compiled program. The dependence analysis
// must be the one the program's synchronized loop was built from.
//
// The builder is allocation-lean by design: arcs are collected once into an
// exactly-estimated slice (deduplicated with a dense bit matrix, preserving
// first-occurrence order), and the adjacency lists are carved out of two
// flat slabs sized by a counting pass, so the finished graph is a handful of
// contiguous blocks instead of per-node append-grown slices.
func Build(p *tac.Program, a *dep.Analysis) (*Graph, error) {
	n := len(p.Instrs)
	g := &Graph{Prog: p}

	// Upper bound on the arc count before deduplication: one per temp use,
	// one per distance-0 memory dependence, two per synchronized dependence.
	est := 0
	var useBuf [3]int
	for _, in := range p.Instrs {
		est += len(in.AppendUses(useBuf[:0]))
	}
	for _, d := range a.Deps {
		if d.Distance == 0 {
			est++
		}
	}
	est += 2 * len(p.Sync.Synced)
	arcs := make([]Arc, 0, est)
	seen := bitset.Make(nil, n*n)
	addArc := func(from, to int, kind ArcKind) {
		if from == to {
			return
		}
		if k := from*n + to; !seen.Has(k) {
			seen.Set(k)
			arcs = append(arcs, Arc{From: from, To: to, Kind: kind})
		}
	}

	// 1. Register def-use arcs. Each temp has exactly one definition.
	maxTemp := p.NumTemps
	for _, in := range p.Instrs {
		if in.Dst > maxTemp {
			maxTemp = in.Dst
		}
	}
	// One scratch block for the def table and the degree counters.
	scratch := make([]int, maxTemp+1+2*n)
	defOf := scratch[:maxTemp+1] // temp -> defining node + 1; 0 = none
	for i, in := range p.Instrs {
		if in.Dst > 0 {
			if prev := defOf[in.Dst]; prev != 0 {
				return nil, fmt.Errorf("dfg: temp t%d defined twice (instrs %d and %d)", in.Dst, prev, i+1)
			}
			defOf[in.Dst] = i + 1
		}
	}
	for i, in := range p.Instrs {
		for _, t := range in.AppendUses(useBuf[:0]) {
			if t <= 0 || t >= len(defOf) || defOf[t] == 0 {
				return nil, fmt.Errorf("dfg: instr %d uses undefined temp t%d", i+1, t)
			}
			d := defOf[t] - 1
			if d >= i {
				return nil, fmt.Errorf("dfg: instr %d uses temp t%d defined later (instr %d)", i+1, t, d+1)
			}
			addArc(d, i, Data)
		}
	}

	// 2. Loop-independent memory dependence arcs from the analysis.
	refInstr := func(r dep.Ref) (*tac.Instr, bool) {
		if r.Array != nil {
			if r.Merge {
				in, ok := p.MergeLoad[r.Array]
				return in, ok
			}
			in, ok := p.ArrayInstr[r.Array]
			return in, ok
		}
		in, ok := p.ScalarInstr[tac.ScalarKey{Stmt: r.Stmt, Name: r.ScalarName, Write: r.Write}]
		return in, ok
	}
	for _, d := range a.Deps {
		if d.Distance != 0 {
			continue
		}
		src, ok1 := refInstr(d.Src)
		snk, ok2 := refInstr(d.Snk)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("dfg: dependence %v has unmapped reference", d)
		}
		addArc(src.ID-1, snk.ID-1, Mem)
	}

	// 3. Synchronization-condition arcs for every synchronized dependence.
	waitIdx := func(stmt int, signal string, dist int) (int, bool) {
		for i, in := range p.Instrs {
			if in.Op == tac.Wait && in.Stmt == stmt && in.Signal == signal && in.SigDist == dist {
				return i, true
			}
		}
		return 0, false
	}
	for _, d := range p.Sync.Synced {
		label := p.Sync.Base.Body[d.Src.Stmt].Label
		send := p.SendFor(label)
		if send == nil {
			return nil, fmt.Errorf("dfg: missing send for signal %s", label)
		}
		srcIn, ok := refInstr(d.Src)
		if !ok {
			return nil, fmt.Errorf("dfg: dependence %v source unmapped", d)
		}
		addArc(srcIn.ID-1, send.ID-1, SrcToSend)
		wi, ok := waitIdx(d.Snk.Stmt, label, d.Distance)
		if !ok {
			return nil, fmt.Errorf("dfg: missing wait for %v", d)
		}
		snkIn, ok := refInstr(d.Snk)
		if !ok {
			return nil, fmt.Errorf("dfg: dependence %v sink unmapped", d)
		}
		addArc(wi, snkIn.ID-1, WaitToSnk)
	}

	// Finalize: carve the Succ/Pred adjacency lists out of one flat slab
	// sized by a counting pass. Appends below stay within each node's
	// sub-slice capacity, so list order matches arc discovery order exactly
	// as the incremental builder produced it.
	g.Arcs = arcs
	flat := make([]int, 2*len(arcs))
	deg := scratch[maxTemp+1:]
	sdeg, pdeg := deg[:n], deg[n:]
	for _, a := range arcs {
		sdeg[a.From]++
		pdeg[a.To]++
	}
	adj := make([][]int, 2*n)
	g.Succ, g.Pred = adj[:n], adj[n:]
	off := 0
	for i := 0; i < n; i++ {
		g.Succ[i] = flat[off : off : off+sdeg[i]]
		off += sdeg[i]
	}
	for i := 0; i < n; i++ {
		g.Pred[i] = flat[off : off : off+pdeg[i]]
		off += pdeg[i]
	}
	for _, a := range arcs {
		g.Succ[a.From] = append(g.Succ[a.From], a.To)
		g.Pred[a.To] = append(g.Pred[a.To], a.From)
	}

	g.computeComponents()
	g.computePaths()
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Succ) }

// computeComponents finds weakly connected components (union-find) and
// classifies them.
func (g *Graph) computeComponents() {
	n := g.N()
	// One scratch block: union-find parents, root->component map, and the
	// three per-component counters (nc <= n).
	scratch := make([]int, 5*n)
	parent := scratch[:n]
	for i := range parent {
		parent[i] = i
	}
	for _, a := range g.Arcs {
		ufUnion(parent, a.From, a.To)
	}
	// Assign component IDs in order of first encounter and count members,
	// then carve the per-component node/wait/send lists out of flat slabs.
	rootToComp := scratch[n : 2*n] // root -> comp ID + 1; 0 = unassigned
	g.compOf = make([]int, n)
	nc := 0
	for i := 0; i < n; i++ {
		r := ufFind(parent, i)
		if rootToComp[r] == 0 {
			nc++
			rootToComp[r] = nc
		}
		g.compOf[i] = rootToComp[r] - 1
	}
	g.comps = make([]Component, nc)
	counts := scratch[2*n : 2*n+3*nc]
	nodeCnt, waitCnt, sendCnt := counts[:nc], counts[nc:2*nc], counts[2*nc:]
	syncTotal := 0
	for i := 0; i < n; i++ {
		id := g.compOf[i]
		nodeCnt[id]++
		switch g.Prog.Instrs[i].Op {
		case tac.Wait:
			waitCnt[id]++
			syncTotal++
		case tac.Send:
			sendCnt[id]++
			syncTotal++
		}
	}
	slab := make([]int, n+syncTotal)
	nodeSlab, syncSlab := slab[:n], slab[n:]
	nodeOff, syncOff := 0, 0
	for id := 0; id < nc; id++ {
		c := &g.comps[id]
		c.ID = id
		c.Nodes = nodeSlab[nodeOff : nodeOff : nodeOff+nodeCnt[id]]
		nodeOff += nodeCnt[id]
		c.Waits = syncSlab[syncOff : syncOff : syncOff+waitCnt[id]]
		syncOff += waitCnt[id]
		c.Sends = syncSlab[syncOff : syncOff : syncOff+sendCnt[id]]
		syncOff += sendCnt[id]
	}
	for i := 0; i < n; i++ {
		c := &g.comps[g.compOf[i]]
		c.Nodes = append(c.Nodes, i)
		switch g.Prog.Instrs[i].Op {
		case tac.Wait:
			c.Waits = append(c.Waits, i)
		case tac.Send:
			c.Sends = append(c.Sends, i)
		}
	}
	for i := range g.comps {
		c := &g.comps[i]
		switch {
		case len(c.Waits) > 0 && len(c.Sends) > 0:
			c.Kind = Sigwat
		case len(c.Sends) > 0:
			c.Kind = Sig
		case len(c.Waits) > 0:
			c.Kind = Wat
		default:
			c.Kind = Plain
		}
	}
}

// ufFind is union-find root lookup with path halving.
func ufFind(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

func ufUnion(parent []int, a, b int) {
	ra, rb := ufFind(parent, a), ufFind(parent, b)
	if ra != rb {
		parent[ra] = rb
	}
}

// computePaths finds SP(Wat, Sig) for every synchronization pair whose wait
// and send fall in the same Sigwat component and are connected by a directed
// path. Paths are sorted by descending weight |SP|/d (the paper's
// (n/d)·|SP| with the common factor n dropped), ties broken by wait index.
func (g *Graph) computePaths() {
	var prev, queue []int // BFS buffers shared across all pairs
	for _, c := range g.comps {
		if c.Kind != Sigwat {
			continue
		}
		if prev == nil {
			buf := make([]int, 2*g.N())
			prev = buf[:g.N()]
			queue = buf[g.N():g.N()]
		}
		for _, w := range c.Waits {
			win := g.Prog.Instrs[w]
			for _, s := range c.Sends {
				sin := g.Prog.Instrs[s]
				if sin.Signal != win.Signal {
					continue
				}
				if nodes := g.shortestPathInto(w, s, prev, queue); nodes != nil {
					g.paths = append(g.paths, SyncPath{
						Wait: w, Send: s, Nodes: nodes,
						Distance: win.SigDist, Signal: win.Signal, Comp: c.ID,
					})
				}
			}
		}
	}
	if len(g.paths) > 1 {
		sort.Stable(pathsByWeight(g.paths))
	}
}

// pathsByWeight orders synchronization paths by descending weight, ties by
// wait index (typed to keep graph building off the reflection sorter).
type pathsByWeight []SyncPath

func (s pathsByWeight) Len() int      { return len(s) }
func (s pathsByWeight) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s pathsByWeight) Less(i, j int) bool {
	wi, wj := s[i].Weight(), s[j].Weight()
	if wi != wj {
		return wi > wj
	}
	return s[i].Wait < s[j].Wait
}

// shortestPath returns the node sequence of a shortest directed path from
// src to dst, or nil if none exists.
func (g *Graph) shortestPath(src, dst int) []int {
	return g.shortestPathInto(src, dst, make([]int, g.N()), make([]int, 0, g.N()))
}

// shortestPathInto is shortestPath over caller-owned BFS scratch (prev of
// length N, queue of capacity N). Only the returned path is allocated, at
// its exact length.
func (g *Graph) shortestPathInto(src, dst int, prev, queue []int) []int {
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue = append(queue[:0], src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if v == dst {
			hops := 1
			for x := dst; x != src; x = prev[x] {
				hops++
			}
			path := make([]int, hops)
			for x, i := dst, hops-1; ; x, i = prev[x], i-1 {
				path[i] = x
				if x == src {
					break
				}
			}
			return path
		}
		for _, w := range g.Succ[v] {
			if prev[w] == -1 {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// Components returns the weakly connected components.
func (g *Graph) Components() []Component { return g.comps }

// ComponentOf returns the component ID of a node.
func (g *Graph) ComponentOf(node int) int { return g.compOf[node] }

// Component returns the component with the given ID.
func (g *Graph) Component(id int) Component { return g.comps[id] }

// SyncPaths returns the synchronization paths in scheduling order
// (descending |SP|/d).
func (g *Graph) SyncPaths() []SyncPath { return g.paths }

// Topological returns a topological order of all nodes (by Kahn's algorithm,
// smallest instruction index first among ready nodes, so program order is a
// fixpoint). An error is returned if the graph has a cycle, which would
// indicate a builder bug.
func (g *Graph) Topological() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Pred[i])
	}
	// Min-heap replaced by simple ordered scan: n is small (loop bodies).
	var order []int
	used := make([]bool, n)
	for len(order) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if !used[i] && indeg[i] == 0 {
				picked = i
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("dfg: dependence cycle detected")
		}
		used[picked] = true
		order = append(order, picked)
		for _, w := range g.Succ[picked] {
			indeg[w]--
		}
	}
	return order, nil
}

// CriticalPathLengths returns, for every node, the length (in latency-
// weighted cycles) of the longest path from the node to any sink, using the
// supplied latency function. Classic list-scheduling priority.
func (g *Graph) CriticalPathLengths(latency func(*tac.Instr) int) ([]int, error) {
	order, err := g.Topological()
	if err != nil {
		return nil, err
	}
	n := g.N()
	dist := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		lat := latency(g.Prog.Instrs[v])
		best := 0
		for _, w := range g.Succ[v] {
			if dist[w] > best {
				best = dist[w]
			}
		}
		dist[v] = lat + best
	}
	return dist, nil
}

// Ancestors returns the set of nodes from which the given node is reachable
// (excluding the node itself).
func (g *Graph) Ancestors(node int) map[int]bool {
	out := map[int]bool{}
	var stack []int
	for _, p := range g.Pred[node] {
		stack = append(stack, p)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[v] {
			continue
		}
		out[v] = true
		for _, p := range g.Pred[v] {
			if !out[p] {
				stack = append(stack, p)
			}
		}
	}
	return out
}

// PairArcs returns the artificial send→wait arcs the new scheduler adds to
// convert cross-component synchronization pairs to LFD (§3.2: Sig graphs are
// scheduled before, and Wat graphs after, all Sigwat graphs). Following the
// paper, an arc is added exactly when the wait lives in a Wat component or
// the send lives in a Sig component. This is provably acyclic: an added arc
// can only leave a component that contains a send and enter one that
// contains a wait, Sig components contain no waits and Wat components no
// sends, so every added-arc chain is Sig → Sigwat → Wat and terminates.
// Sigwat↔Sigwat cross pairs (which can be mutually recursive) are left to
// the priority heuristic.
func (g *Graph) PairArcs() []Arc {
	var out []Arc
	for i, in := range g.Prog.Instrs {
		if in.Op != tac.Wait {
			continue
		}
		send := g.Prog.SendFor(in.Signal)
		if send == nil {
			continue
		}
		s := send.ID - 1
		if g.compOf[s] == g.compOf[i] {
			continue
		}
		waitComp := g.comps[g.compOf[i]].Kind
		sendComp := g.comps[g.compOf[s]].Kind
		if waitComp == Wat || sendComp == Sig {
			out = append(out, Arc{From: s, To: i, Kind: SrcToSend})
		}
	}
	return out
}

// SyncInfo summarizes the graph for reports.
func (g *Graph) SyncInfo() string {
	counts := map[CompKind]int{}
	for _, c := range g.comps {
		counts[c.Kind]++
	}
	return fmt.Sprintf("%d nodes, %d arcs, components: %d Sigwat, %d Sig, %d Wat, %d plain; %d sync paths",
		g.N(), len(g.Arcs), counts[Sigwat], counts[Sig], counts[Wat], counts[Plain], len(g.paths))
}
