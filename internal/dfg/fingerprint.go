package dfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"doacross/internal/dlx"
)

// Fingerprint is a content hash identifying a scheduling problem. Two graphs
// with equal fingerprints are interchangeable for scheduling and execution:
// their instruction sequences render identically (same opcodes, operands,
// arrays, signals and distances), run on the same function-unit classes, and
// carry the same dependence arcs. The batch pipeline's schedule cache is
// keyed by ConfigKey, which extends the graph fingerprint with the machine
// configuration and scheduler options.
type Fingerprint [sha256.Size]byte

// String renders a short hex prefix for logs and reports.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

func writeIntTo(h hash.Hash, buf *[8]byte, v int) {
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

// Fingerprint hashes the graph's content: every instruction's rendering and
// unit class, and every arc with its kind. Node numbering is positional, so
// isomorphic-but-reordered bodies hash differently; the cache trades those
// rare misses for exactness (a hit is never a false positive short of a
// SHA-256 collision).
func (g *Graph) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [8]byte
	writeIntTo(h, &buf, g.N())
	for _, in := range g.Prog.Instrs {
		// The rendering covers opcode, operands, arrays, signals and
		// distances; the class disambiguates integer- vs float-typed
		// arithmetic, which renders identically but schedules differently.
		fmt.Fprintf(h, "%s|%d\n", in, int(in.Class()))
	}
	writeIntTo(h, &buf, len(g.Arcs))
	for _, a := range g.Arcs {
		writeIntTo(h, &buf, a.From)
		writeIntTo(h, &buf, a.To)
		writeIntTo(h, &buf, int(a.Kind))
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// ConfigKey combines the graph fingerprint with a machine configuration and
// free-form salt strings (scheduler options, trip counts) into one cache
// key. The machine's Name is deliberately excluded: identically shaped
// machines share schedules regardless of label.
func ConfigKey(g *Graph, cfg dlx.Config, salt ...string) Fingerprint {
	return KeyFrom(g.Fingerprint(), cfg, salt...)
}

// KeyFrom derives a ConfigKey from an already computed graph fingerprint,
// letting callers hash the graph once per loop and cheaply re-key it for
// every machine configuration.
func KeyFrom(base Fingerprint, cfg dlx.Config, salt ...string) Fingerprint {
	h := sha256.New()
	h.Write(base[:])
	var buf [8]byte
	writeIntTo(h, &buf, cfg.Issue)
	for c := 0; c < int(dlx.NumClasses); c++ {
		writeIntTo(h, &buf, cfg.Units[c])
		writeIntTo(h, &buf, cfg.Latency[c])
	}
	for _, s := range salt {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}
