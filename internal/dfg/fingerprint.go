package dfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"doacross/internal/dlx"
	"doacross/internal/tac"
)

// Fingerprint is a content hash identifying a scheduling problem. Two graphs
// with equal fingerprints are interchangeable for scheduling and execution:
// their instruction sequences carry the same opcodes, operands, arrays,
// signals and distances, run on the same function-unit classes, and carry
// the same dependence arcs. The batch pipeline's schedule cache is keyed by
// ConfigKey, which extends the graph fingerprint with the machine
// configuration and scheduler options.
type Fingerprint [sha256.Size]byte

// String renders a short hex prefix for logs and reports.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// fpPool recycles the encoding buffers so fingerprinting a graph in the hot
// batch path allocates nothing once warm (the buffer grows to the largest
// body seen and stays there).
var fpPool = sync.Pool{New: func() any { return new(fpBuf) }}

type fpBuf struct{ b []byte }

func appendIntFP(b []byte, v int) []byte { return binary.AppendVarint(b, int64(v)) }

func appendStrFP(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendOperandFP(b []byte, o tac.Operand) []byte {
	b = appendIntFP(b, int(o.Kind))
	b = appendIntFP(b, o.Reg)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(o.Val))
}

// Fingerprint hashes the graph's content: every instruction field that
// affects its rendering or unit class (opcode, destination, operands,
// relation, array, signal, distance, class), and every arc with its kind.
// All variable-length fields are length-prefixed, so the encoding is
// injective. Node numbering is positional, so isomorphic-but-reordered
// bodies hash differently; the cache trades those rare misses for exactness
// (a hit is never a false positive short of a SHA-256 collision).
func (g *Graph) Fingerprint() Fingerprint {
	w := fpPool.Get().(*fpBuf)
	b := w.b[:0]
	b = appendIntFP(b, g.N())
	for _, in := range g.Prog.Instrs {
		b = appendIntFP(b, int(in.Op))
		b = appendIntFP(b, in.Dst)
		b = appendOperandFP(b, in.A)
		b = appendOperandFP(b, in.B)
		b = appendOperandFP(b, in.C)
		b = appendIntFP(b, int(in.Rel))
		b = appendStrFP(b, in.Array)
		b = appendStrFP(b, in.Signal)
		b = appendIntFP(b, in.SigDist)
		b = appendIntFP(b, int(in.Class()))
	}
	b = appendIntFP(b, len(g.Arcs))
	for _, a := range g.Arcs {
		b = appendIntFP(b, a.From)
		b = appendIntFP(b, a.To)
		b = appendIntFP(b, int(a.Kind))
	}
	out := Fingerprint(sha256.Sum256(b))
	w.b = b
	fpPool.Put(w)
	return out
}

// ConfigKey combines the graph fingerprint with a machine configuration and
// free-form salt strings (scheduler options, trip counts) into one cache
// key. The machine's Name is deliberately excluded: identically shaped
// machines share schedules regardless of label.
func ConfigKey(g *Graph, cfg dlx.Config, salt ...string) Fingerprint {
	return KeyFrom(g.Fingerprint(), cfg, salt...)
}

// KeyFrom derives a ConfigKey from an already computed graph fingerprint,
// letting callers hash the graph once per loop and cheaply re-key it for
// every machine configuration.
func KeyFrom(base Fingerprint, cfg dlx.Config, salt ...string) Fingerprint {
	w := fpPool.Get().(*fpBuf)
	b := append(w.b[:0], base[:]...)
	b = appendIntFP(b, cfg.Issue)
	for c := 0; c < int(dlx.NumClasses); c++ {
		b = appendIntFP(b, cfg.Units[c])
		b = appendIntFP(b, cfg.Latency[c])
	}
	for _, s := range salt {
		b = appendStrFP(b, s)
	}
	out := Fingerprint(sha256.Sum256(b))
	w.b = b
	fpPool.Put(w)
	return out
}
