package dfg

import (
	"fmt"
	"strings"

	"doacross/internal/tac"
)

// DOT renders the graph in Graphviz format, mirroring the paper's Fig. 3
// conventions: Wait_Signal nodes as down-triangles, Send_Signal nodes as
// up-triangles, synchronization arcs dashed, and components clustered and
// labeled with their Sig/Wat/Sigwat kind.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph dfg {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n")
	for _, c := range g.Components() {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"%s\";\n", c.ID, c.Kind)
		for _, v := range c.Nodes {
			in := g.Prog.Instrs[v]
			shape := "circle"
			switch in.Op {
			case tac.Wait:
				shape = "invtriangle"
			case tac.Send:
				shape = "triangle"
			}
			fmt.Fprintf(&sb, "    n%d [label=\"%d\" shape=%s tooltip=%q];\n",
				v, in.ID, shape, in.String())
		}
		sb.WriteString("  }\n")
	}
	for _, a := range g.Arcs {
		style := ""
		switch a.Kind {
		case SrcToSend, WaitToSnk:
			style = " [style=dashed]"
		case Mem:
			style = " [style=dotted]"
		}
		fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", a.From, a.To, style)
	}
	sb.WriteString("}\n")
	return sb.String()
}
