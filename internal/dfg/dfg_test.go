package dfg

import (
	"strings"
	"testing"

	"doacross/internal/dep"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func buildSrc(t testing.TB, src string) *Graph {
	t.Helper()
	a := dep.Analyze(lang.MustParse(src))
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	g, err := Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func hasArc(g *Graph, from, to int, kind ArcKind) bool {
	for _, a := range g.Arcs {
		if a.From == from && a.To == to && a.Kind == kind {
			return true
		}
	}
	return false
}

// Instruction IDs below are the ones checked in tac's TestFig2Shape (1-based);
// node indices are ID-1.
func TestFig3SyncArcs(t *testing.T) {
	g := buildSrc(t, fig1Source)
	// Wait(S3,I-2) [1] -> load A[t3] [5]
	if !hasArc(g, 0, 4, WaitToSnk) {
		t.Error("missing wait->snk arc 1->5")
	}
	// Wait(S3,I-1) [11] -> load A[t12] [16]
	if !hasArc(g, 10, 15, WaitToSnk) {
		t.Error("missing wait->snk arc 11->16")
	}
	// store A[t1] [27] -> Send(S3) [28]
	if !hasArc(g, 26, 27, SrcToSend) {
		t.Error("missing src->send arc 27->28")
	}
}

func TestFig3MemArc(t *testing.T) {
	g := buildSrc(t, fig1Source)
	// Loop-independent flow: store B[t1] [10] -> load B[t1] [22].
	if !hasArc(g, 9, 21, Mem) {
		t.Error("missing mem arc 10->22 (B[I])")
	}
}

func TestFig3Partition(t *testing.T) {
	g := buildSrc(t, fig1Source)
	comps := g.Components()
	var sigwat, wat, sig, plain int
	for _, c := range comps {
		switch c.Kind {
		case Sigwat:
			sigwat++
		case Wat:
			wat++
		case Sig:
			sig++
		case Plain:
			plain++
		}
	}
	// The paper's Fig. 3: one Sigwat graph (S1+S3 with both waits' partner
	// send) and one Wat graph (S2 with Wait(S3, I-1)).
	if sigwat != 1 {
		t.Errorf("sigwat components = %d, want 1\n%s", sigwat, g.SyncInfo())
	}
	if wat != 1 {
		t.Errorf("wat components = %d, want 1\n%s", wat, g.SyncInfo())
	}
	if sig != 0 {
		t.Errorf("sig components = %d, want 0", sig)
	}
	// S1's and S3's nodes share a component via the B[I] mem arc; node 0
	// (wait1) and node 27 (send) must be together.
	if g.ComponentOf(0) != g.ComponentOf(27) {
		t.Error("wait1 and send should share the Sigwat component")
	}
	// Wait2 (node 10) is in the Wat component with S2's body.
	if g.ComponentOf(10) == g.ComponentOf(27) {
		t.Error("wait2 should be in a separate Wat component")
	}
	if g.ComponentOf(10) != g.ComponentOf(15) {
		t.Error("wait2 and its sink load should share the Wat component")
	}
}

func TestFig3SyncPath(t *testing.T) {
	g := buildSrc(t, fig1Source)
	paths := g.SyncPaths()
	if len(paths) != 1 {
		t.Fatalf("sync paths = %d, want 1 (only the Sigwat pair)", len(paths))
	}
	p := paths[0]
	if p.Distance != 2 || p.Signal != "S3" {
		t.Errorf("path meta = d%d %s, want d2 S3", p.Distance, p.Signal)
	}
	// Paper path (our numbering): 1,5,9,10,22,26,27,28 -> indices 0,4,8,9,21,25,26,27.
	want := []int{0, 4, 8, 9, 21, 25, 26, 27}
	if len(p.Nodes) != len(want) {
		t.Fatalf("path = %v, want %v", p.Nodes, want)
	}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Errorf("path[%d] = %d, want %d (full %v)", i, p.Nodes[i], want[i], p.Nodes)
		}
	}
}

func TestPairArcsFig1(t *testing.T) {
	g := buildSrc(t, fig1Source)
	arcs := g.PairArcs()
	// Only the Wat-graph wait (node 10) pairs across components with the
	// send (node 27).
	if len(arcs) != 1 {
		t.Fatalf("pair arcs = %v, want exactly one", arcs)
	}
	if arcs[0].From != 27 || arcs[0].To != 10 {
		t.Errorf("pair arc = %v, want 28->11 (send->wait2)", arcs[0])
	}
}

func TestTopologicalValid(t *testing.T) {
	g := buildSrc(t, fig1Source)
	order, err := g.Topological()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, a := range g.Arcs {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %v violated in topological order", a)
		}
	}
}

func TestCriticalPathLengths(t *testing.T) {
	g := buildSrc(t, fig1Source)
	cp, err := g.CriticalPathLengths(func(in *tac.Instr) int {
		if in.Op == tac.Mul {
			return 3
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first wait heads the longest chain through the B store/load to the
	// send: 1(wait)+1(load5)+1(add9)+1(store10)+1(load22)+1(add26)+1(store27)+1(send28) = 8.
	if cp[0] != 8 {
		t.Errorf("critical path from wait1 = %d, want 8", cp[0])
	}
	// A sink node has just its own latency.
	if cp[27] != 1 {
		t.Errorf("critical path from send = %d, want 1", cp[27])
	}
}

func TestAncestors(t *testing.T) {
	g := buildSrc(t, fig1Source)
	anc := g.Ancestors(4) // load A[t3] [5]
	// Ancestors: wait1 [1], t2 [3], t3 [4] -> indices 0, 2, 3.
	for _, want := range []int{0, 2, 3} {
		if !anc[want] {
			t.Errorf("ancestors of node 4 missing %d: %v", want, anc)
		}
	}
	if len(anc) != 3 {
		t.Errorf("ancestors of node 4 = %v, want exactly {0,2,3}", anc)
	}
}

func TestDoallGraphNoSync(t *testing.T) {
	g := buildSrc(t, "DO I = 1, N\nA[I] = E[I] + 1\nENDDO")
	if len(g.SyncPaths()) != 0 {
		t.Error("DOALL loop should have no sync paths")
	}
	for _, c := range g.Components() {
		if c.Kind != Plain {
			t.Errorf("DOALL loop has %v component", c.Kind)
		}
	}
	if len(g.PairArcs()) != 0 {
		t.Error("DOALL loop should have no pair arcs")
	}
}

func TestReductionSigwat(t *testing.T) {
	g := buildSrc(t, "DO I = 1, N\nS = S + A[I]\nENDDO")
	paths := g.SyncPaths()
	if len(paths) != 1 {
		t.Fatalf("reduction paths = %d, want 1", len(paths))
	}
	// wait -> loadS S -> storeS -> send (the distance-0 anti-dependence arc
	// loadS->storeS shortcuts the add): 4 nodes.
	if len(paths[0].Nodes) != 4 {
		t.Errorf("reduction path = %v, want 4 nodes", paths[0].Nodes)
	}
}

func TestSyncPathOrdering(t *testing.T) {
	// Two Sigwat chains: X (distance 1) and Y (distance 4). |SP| similar, so
	// the d=1 path must sort first ((n/d)·|SP| larger).
	src := `DO I = 1, N
S1: X[I] = X[I-1] + A[I]
S2: Y[I] = Y[I-4] + B[I]
ENDDO`
	g := buildSrc(t, src)
	paths := g.SyncPaths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	if paths[0].Distance != 1 || paths[1].Distance != 4 {
		t.Errorf("path order = d%d, d%d; want d1 first", paths[0].Distance, paths[1].Distance)
	}
	if paths[0].Weight() <= paths[1].Weight() {
		t.Error("weights not descending")
	}
}

func TestGraphDeterminism(t *testing.T) {
	g1 := buildSrc(t, fig1Source)
	g2 := buildSrc(t, fig1Source)
	if g1.SyncInfo() != g2.SyncInfo() {
		t.Errorf("graph build not deterministic: %s vs %s", g1.SyncInfo(), g2.SyncInfo())
	}
	if len(g1.Arcs) != len(g2.Arcs) {
		t.Fatal("arc count differs")
	}
	for i := range g1.Arcs {
		if g1.Arcs[i] != g2.Arcs[i] {
			t.Errorf("arc %d differs: %v vs %v", i, g1.Arcs[i], g2.Arcs[i])
		}
	}
}

func TestDOTExport(t *testing.T) {
	g := buildSrc(t, fig1Source)
	dot := g.DOT()
	for _, want := range []string{
		"digraph dfg",
		"invtriangle", // waits
		"triangle",    // send
		"style=dashed",
		"cluster_0",
		"Sigwat",
		"Wat",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One node line per instruction (cluster labels use label= too, so count
	// the node form specifically).
	if got := strings.Count(dot, " [label=\""); got != g.N() {
		t.Errorf("DOT has %d node labels, want %d", got, g.N())
	}
}
