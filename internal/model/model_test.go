package model

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/dlx"
	"doacross/internal/lang"
	"doacross/internal/sim"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

func schedule(t testing.TB, src string, cfg dlx.Config, syncSched bool) *core.Schedule {
	t.Helper()
	a := dep.Analyze(lang.MustParse(src))
	p := tac.MustGenerate(syncop.Insert(a, syncop.Options{}))
	g, err := dfg.Build(p, a)
	if err != nil {
		t.Fatal(err)
	}
	var s *core.Schedule
	if syncSched {
		s, err = core.Sync(g, cfg)
	} else {
		s, err = core.List(g, cfg, core.ProgramOrder)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLBDTimeFormula(t *testing.T) {
	// Paper example after Fig. 4(a): span 12, d = 1, l = 13 -> 12N + 13.
	if got := LBDTime(100, 1, 12, 0, 13); got != 1213 {
		t.Errorf("LBDTime = %d, want 1213", got)
	}
	// Distance 2 halves the chain.
	if got := LBDTime(100, 2, 7, 1, 13); got != 50*6+13 {
		t.Errorf("LBDTime = %d, want %d", got, 50*6+13)
	}
	if LBDTime(0, 1, 5, 0, 9) != 0 {
		t.Error("zero-trip LBDTime should be 0")
	}
	// Negative span clamps to LFD behavior.
	if got := LBDTime(100, 1, 3, 7, 13); got != 13 {
		t.Errorf("negative span LBDTime = %d, want 13", got)
	}
}

func TestLFDTime(t *testing.T) {
	if LFDTime(42) != 42 {
		t.Error("LFD time is the single-iteration length")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(200, 20); s != 90 {
		t.Errorf("Speedup(200,20) = %v, want 90", s)
	}
	if s := Speedup(0, 0); s != 0 {
		t.Errorf("Speedup(0,0) = %v, want 0", s)
	}
	if s := Speedup(100, 100); s != 0 {
		t.Errorf("no-change speedup = %v, want 0", s)
	}
}

// TestPredictMatchesSimulatorChain checks the prediction is exact on a
// single-LBD-pair loop.
func TestPredictMatchesSimulatorChain(t *testing.T) {
	src := "DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO"
	for _, syncSched := range []bool{false, true} {
		s := schedule(t, src, dlx.Uniform(2, 1), syncSched)
		for _, n := range []int{1, 2, 5, 50, 100} {
			want := sim.MustTime(s, sim.Options{Lo: 1, Hi: n}).Total
			got := Predict(s, n)
			if got != want {
				t.Errorf("sync=%v n=%d: Predict = %d, simulator = %d", syncSched, n, got, want)
			}
		}
	}
}

// TestPredictLowerBoundsSimulator checks Predict never exceeds the simulated
// time on multi-pair loops (interacting pairs can only add stalls).
func TestPredictLowerBoundsSimulator(t *testing.T) {
	srcs := []string{
		`DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`,
		"DO I = 1, N\nX[I] = X[I-1] + Y[I-2]\nY[I] = X[I-2] * 2\nENDDO",
	}
	for _, src := range srcs {
		for _, cfg := range dlx.PaperConfigs() {
			for _, syncSched := range []bool{false, true} {
				s := schedule(t, src, cfg, syncSched)
				for _, n := range []int{10, 100} {
					simT := sim.MustTime(s, sim.Options{Lo: 1, Hi: n}).Total
					if p := Predict(s, n); p > simT {
						t.Errorf("%s sync=%v n=%d: Predict %d > simulated %d", cfg.Name, syncSched, n, p, simT)
					}
				}
			}
		}
	}
}

// TestPredictTightOnFig1 checks the prediction is within a few percent on
// the paper's example (the dominant pair controls the recurrence).
func TestPredictTightOnFig1(t *testing.T) {
	src := `DO I = 1, N
S1: B[I] = A[I-2] + E[I+1]
S2: G[I-3] = A[I-1] * E[I+2]
S3: A[I] = B[I] + C[I+3]
ENDDO`
	s := schedule(t, src, dlx.Uniform(4, 1), false)
	n := 100
	simT := sim.MustTime(s, sim.Options{Lo: 1, Hi: n}).Total
	p := Predict(s, n)
	if float64(simT-p) > 0.1*float64(simT) {
		t.Errorf("Predict %d vs simulated %d: slack > 10%%", p, simT)
	}
}

func TestSlopeZeroForLFDOnly(t *testing.T) {
	// Forward-carried dependence: the sync scheduler converts it to LFD, so
	// the slope must be 0 (flat time in n).
	src := "DO I = 1, N\nA[I] = E[I]\nB[I] = A[I-1]\nENDDO"
	s := schedule(t, src, dlx.Standard(4, 2), true)
	if sl := Slope(s); sl != 0 {
		t.Errorf("slope = %v, want 0 (all pairs LFD)\n%s", sl, s.Listing())
	}
	t10 := sim.MustTime(s, sim.Options{Lo: 1, Hi: 10}).Total
	t100 := sim.MustTime(s, sim.Options{Lo: 1, Hi: 100}).Total
	if t10 != t100 {
		t.Errorf("LFD loop time grows: %d vs %d", t10, t100)
	}
}
