// Package model implements the paper's analytic timing model (§2):
//
//   - an LFD loop (every Send_Signal issued before its partner Wait_Signal)
//     executes in parallel in the time of one iteration: T = l;
//   - an LBD loop costs T = (n/d)·(i−j) + l, where i and j are the positions
//     of the Send and Wait, d the dependence distance, n the trip count and
//     l the length of one scheduled iteration.
//
// The package predicts parallel execution time directly from a schedule's
// pair spans, which the simulator-vs-model tests use to validate both sides.
package model

import (
	"doacross/internal/core"
)

// LFDTime is the parallel execution time of an LFD loop: one iteration.
func LFDTime(l int) int { return l }

// LBDTime is the paper's LBD loop theorem: (n/d)·(i−j) + l.
func LBDTime(n, d, i, j, l int) int {
	if n <= 0 {
		return 0
	}
	span := i - j
	if span < 0 {
		span = 0
	}
	return n/d*span + l
}

// Predict estimates the parallel execution time of n iterations of a
// schedule on n processors from its synchronization-pair spans.
//
// Each LBD pair (wait at cycle j, send at cycle i, distance d) forms an
// iteration recurrence: iteration k's wait row cannot issue until iteration
// k−d's send has issued and become visible, so consecutive chain links are
// (i−j+1) cycles apart. The chain ending at iteration n has ⌊(n−1)/d⌋ links,
// and the final iteration still needs its full length l after the chain
// delivers its send offset, giving T = ⌊(n−1)/d⌋·(i−j+1) + l — the dynamic
// refinement of the paper's (n/d)·(i−j) + l.
//
// The prediction is exact for schedules with a single dominant LBD pair and
// a lower bound when several pairs interact (the simulator then reports the
// true value; tests check Predict(s, n) <= simulated).
func Predict(s *core.Schedule, n int) int {
	if n <= 0 {
		return 0
	}
	l := s.CompletionLength()
	best := l
	for _, p := range s.PairSpans() {
		if !p.LBD() {
			continue
		}
		links := (n - 1) / p.Distance
		if total := links*(p.Span()+1) + l; total > best {
			best = total
		}
	}
	return best
}

// Slope returns the asymptotic cycles-per-iteration growth of the schedule's
// parallel time: max over LBD pairs of (span+1)/d, 0 for LFD-only schedules.
func Slope(s *core.Schedule) float64 {
	return s.MaxLBDStall()
}

// Speedup returns the improvement percentage the paper's Table 3 reports:
// 100·(Ta − Tb)/Ta for baseline time Ta and new-schedule time Tb.
func Speedup(ta, tb int) float64 {
	if ta == 0 {
		return 0
	}
	return 100 * float64(ta-tb) / float64(ta)
}
