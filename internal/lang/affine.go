package lang

import "sort"

// SymTerm is one symbolic term of an affine subscript form: Coef * Name,
// where Name is a scalar other than the induction variable. Whether the
// symbol is actually loop-invariant is the caller's obligation to check
// (the dependence analyzer rejects forms whose symbols are written in the
// loop body).
type SymTerm struct {
	Name string
	Coef int
}

// AffineForm is an array subscript reduced to the linear form
//
//	Coef*iv + Σ Syms[k].Coef*Syms[k].Name + Off
//
// with integer coefficients. Syms is sorted by name and contains no zero
// coefficients, so two forms are structurally comparable term by term.
type AffineForm struct {
	Coef int
	Off  int
	Syms []SymTerm
}

// SymsEqual reports whether two forms have identical symbolic parts — the
// precondition for the symbolic terms cancelling in a subscript difference.
func (f AffineForm) SymsEqual(g AffineForm) bool {
	if len(f.Syms) != len(g.Syms) {
		return false
	}
	for i := range f.Syms {
		if f.Syms[i] != g.Syms[i] {
			return false
		}
	}
	return true
}

// HasSyms reports whether the form carries any symbolic term.
func (f AffineForm) HasSyms() bool { return len(f.Syms) > 0 }

// AffineSym tries to reduce an array subscript to an AffineForm over the
// induction variable and loop-invariant scalar symbols. It generalizes
// AffineIndex: A[J+1], A[I+J-2] and A[2*I+3*J] all reduce, with J carried
// symbolically. It reports ok=false for genuinely non-linear subscripts
// (A[I*I], A[I*J], A[IX[I]], divisions, float constants).
func AffineSym(e Expr, iv string) (AffineForm, bool) {
	f, ok := affineSym(e, iv)
	if !ok {
		return AffineForm{}, false
	}
	f.normalize()
	return f, true
}

func (f *AffineForm) normalize() {
	if len(f.Syms) == 0 {
		return
	}
	sort.Slice(f.Syms, func(i, j int) bool { return f.Syms[i].Name < f.Syms[j].Name })
	// Merge duplicate names, drop zero coefficients.
	out := f.Syms[:0]
	for _, t := range f.Syms {
		if n := len(out); n > 0 && out[n-1].Name == t.Name {
			out[n-1].Coef += t.Coef
			continue
		}
		out = append(out, t)
	}
	n := 0
	for _, t := range out {
		if t.Coef != 0 {
			out[n] = t
			n++
		}
	}
	f.Syms = out[:n]
}

// isConst reports whether the form is a pure integer constant.
func (f AffineForm) isConst() bool { return f.Coef == 0 && len(f.Syms) == 0 }

func (f AffineForm) scale(k int) AffineForm {
	out := AffineForm{Coef: f.Coef * k, Off: f.Off * k}
	for _, t := range f.Syms {
		out.Syms = append(out.Syms, SymTerm{Name: t.Name, Coef: t.Coef * k})
	}
	return out
}

func affineSym(e Expr, iv string) (AffineForm, bool) {
	switch v := e.(type) {
	case *Const:
		if v.Value != float64(int64(v.Value)) {
			return AffineForm{}, false
		}
		return AffineForm{Off: int(v.Value)}, true
	case *Scalar:
		if v.Name == iv {
			return AffineForm{Coef: 1}, true
		}
		return AffineForm{Syms: []SymTerm{{Name: v.Name, Coef: 1}}}, true
	case *Neg:
		f, ok := affineSym(v.X, iv)
		if !ok {
			return AffineForm{}, false
		}
		return f.scale(-1), true
	case *Binary:
		l, lok := affineSym(v.L, iv)
		r, rok := affineSym(v.R, iv)
		if !lok || !rok {
			return AffineForm{}, false
		}
		switch v.Op {
		case OpAdd:
			l.Coef += r.Coef
			l.Off += r.Off
			l.Syms = append(l.Syms, r.Syms...)
			return l, true
		case OpSub:
			return affineSub(l, r), true
		case OpMul:
			// Only products with a pure constant side stay linear.
			if l.isConst() {
				return r.scale(l.Off), true
			}
			if r.isConst() {
				return l.scale(r.Off), true
			}
			return AffineForm{}, false
		case OpDiv:
			return AffineForm{}, false
		}
	}
	return AffineForm{}, false
}

func affineSub(l, r AffineForm) AffineForm {
	l.Coef -= r.Coef
	l.Off -= r.Off
	for _, t := range r.Syms {
		l.Syms = append(l.Syms, SymTerm{Name: t.Name, Coef: -t.Coef})
	}
	return l
}

// ConstInt evaluates an expression that is a compile-time integer constant
// (literals, negation, constant arithmetic). It is how the dependence
// analyzer decides whether loop bounds are statically known.
func ConstInt(e Expr) (int, bool) {
	f, ok := AffineSym(e, "")
	if !ok || !f.isConst() {
		return 0, false
	}
	return f.Off, true
}
