package lang

import (
	"fmt"
	"strings"
	"unicode"

	"doacross/internal/diag"
)

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokComma    // ,
	TokColon    // :
	TokLBracket // [ or (
	TokRBracket // ] or )
	TokNewline  // statement separator
	TokRel      // relational operator: < <= > >= == !=
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokAssign:
		return "'='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	case TokComma:
		return "','"
	case TokColon:
		return "':'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokNewline:
		return "newline"
	case TokRel:
		return "relational operator"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
	// Paren is true for bracket tokens written with parentheses, so the
	// parser can distinguish A(I) from a parenthesized expression when
	// needed. The grammar treats ( and [ uniformly after an identifier.
	Paren bool
}

// Lexer tokenizes loop source text. Newlines are significant (they terminate
// statements); '!' and '//' start comments running to end of line.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// Next returns the next token. Consecutive newlines are collapsed into one
// TokNewline token.
func (lx *Lexer) Next() (Token, error) {
	for {
		// Skip horizontal whitespace and comments.
		for lx.pos < len(lx.src) {
			c := lx.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				lx.advance()
				continue
			}
			// '!' introduces a comment unless it spells the '!=' operator.
			if (c == '!' && lx.peek2() != '=') || (c == '/' && lx.peek2() == '/') {
				for lx.pos < len(lx.src) && lx.peek() != '\n' {
					lx.advance()
				}
				continue
			}
			break
		}
		if lx.pos >= len(lx.src) {
			return Token{Kind: TokEOF, Line: lx.line, Col: lx.col}, nil
		}
		line, col := lx.line, lx.col
		c := lx.peek()
		switch {
		case c == '\n' || c == ';':
			for lx.pos < len(lx.src) {
				c = lx.peek()
				if c == '\n' || c == ';' || c == ' ' || c == '\t' || c == '\r' {
					lx.advance()
					continue
				}
				break
			}
			return Token{Kind: TokNewline, Text: "\n", Line: line, Col: col}, nil
		case isIdentStart(c):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
				lx.advance()
			}
			return Token{Kind: TokIdent, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
		case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(lx.peek2()))):
			start := lx.pos
			seenDot := false
			for lx.pos < len(lx.src) {
				c = lx.peek()
				if unicode.IsDigit(rune(c)) {
					lx.advance()
					continue
				}
				if c == '.' && !seenDot {
					seenDot = true
					lx.advance()
					continue
				}
				break
			}
			return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Line: line, Col: col}, nil
		default:
			lx.advance()
			switch c {
			case '=':
				if lx.peek() == '=' {
					lx.advance()
					return Token{Kind: TokRel, Text: "==", Line: line, Col: col}, nil
				}
				return Token{Kind: TokAssign, Text: "=", Line: line, Col: col}, nil
			case '<':
				if lx.peek() == '=' {
					lx.advance()
					return Token{Kind: TokRel, Text: "<=", Line: line, Col: col}, nil
				}
				return Token{Kind: TokRel, Text: "<", Line: line, Col: col}, nil
			case '>':
				if lx.peek() == '=' {
					lx.advance()
					return Token{Kind: TokRel, Text: ">=", Line: line, Col: col}, nil
				}
				return Token{Kind: TokRel, Text: ">", Line: line, Col: col}, nil
			case '!':
				if lx.peek() == '=' {
					lx.advance()
					return Token{Kind: TokRel, Text: "!=", Line: line, Col: col}, nil
				}
				return Token{}, diag.Errorf("lang", diag.Pos{Line: line, Col: col}, "unexpected '!'")
			case '+':
				return Token{Kind: TokPlus, Text: "+", Line: line, Col: col}, nil
			case '-':
				return Token{Kind: TokMinus, Text: "-", Line: line, Col: col}, nil
			case '*':
				return Token{Kind: TokStar, Text: "*", Line: line, Col: col}, nil
			case '/':
				return Token{Kind: TokSlash, Text: "/", Line: line, Col: col}, nil
			case ',':
				return Token{Kind: TokComma, Text: ",", Line: line, Col: col}, nil
			case ':':
				return Token{Kind: TokColon, Text: ":", Line: line, Col: col}, nil
			case '[':
				return Token{Kind: TokLBracket, Text: "[", Line: line, Col: col}, nil
			case ']':
				return Token{Kind: TokRBracket, Text: "]", Line: line, Col: col}, nil
			case '(':
				return Token{Kind: TokLBracket, Text: "(", Line: line, Col: col, Paren: true}, nil
			case ')':
				return Token{Kind: TokRBracket, Text: ")", Line: line, Col: col, Paren: true}, nil
			}
			return Token{}, diag.Errorf("lang", diag.Pos{Line: line, Col: col}, "unexpected character %q", string(rune(c)))
		}
	}
}

// Tokenize returns all tokens of src, ending with TokEOF.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	// Tokens are a few characters each on average; one right-sized backing
	// array avoids append growth on the compile hot path.
	out := make([]Token, 0, len(src)/2+4)
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// keywordOf reports the canonical keyword for an identifier, or "".
func keywordOf(ident string) string {
	up := strings.ToUpper(ident)
	switch up {
	case "DO", "DOACROSS", "ENDDO", "END_DOACROSS", "IF":
		return up
	}
	return ""
}
