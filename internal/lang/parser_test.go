package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fig1Source is the paper's Fig. 1(a) loop.
const fig1Source = `
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO
`

func TestParseFig1(t *testing.T) {
	loop, err := Parse(fig1Source)
	if err != nil {
		t.Fatal(err)
	}
	if loop.Var != "I" {
		t.Errorf("induction var = %q, want I", loop.Var)
	}
	if loop.Doacross {
		t.Error("plain DO parsed as DOACROSS")
	}
	if len(loop.Body) != 3 {
		t.Fatalf("got %d statements, want 3", len(loop.Body))
	}
	labels := []string{"S1", "S2", "S3"}
	for i, want := range labels {
		if loop.Body[i].Label != want {
			t.Errorf("stmt %d label = %q, want %q", i, loop.Body[i].Label, want)
		}
	}
	s2 := loop.Body[1]
	lhs, ok := s2.LHS.(*ArrayRef)
	if !ok || lhs.Name != "G" {
		t.Fatalf("S2 LHS = %v, want G[...]", s2.LHS)
	}
	c, off, ok := AffineIndex(lhs.Index, "I")
	if !ok || c != 1 || off != -3 {
		t.Errorf("S2 LHS subscript affine = (%d,%d,%v), want (1,-3,true)", c, off, ok)
	}
}

func TestParseDoacrossKeyword(t *testing.T) {
	loop, err := Parse("DOACROSS I = 1, 10\nA[I] = A[I-1]\nEND_DOACROSS")
	if err != nil {
		t.Fatal(err)
	}
	if !loop.Doacross {
		t.Error("DOACROSS flag not set")
	}
}

func TestParseAutoLabels(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nA[I] = 1\nX: B[I] = 2\nC[I] = 3\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	got := []string{loop.Body[0].Label, loop.Body[1].Label, loop.Body[2].Label}
	want := []string{"S1", "X", "S2"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseAutoLabelSkipsExplicit(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nS2: A[I] = 1\nB[I] = 2\nC[I] = 3\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	// Auto labels must not collide with the explicit S2.
	seen := map[string]bool{}
	for _, st := range loop.Body {
		if seen[st.Label] {
			t.Fatalf("duplicate label %q", st.Label)
		}
		seen[st.Label] = true
	}
}

func TestParseParenSubscripts(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nA(I) = B(I-1) + 1\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loop.Body[0].LHS.(*ArrayRef); !ok {
		t.Errorf("A(I) should parse as array ref, got %T", loop.Body[0].LHS)
	}
}

func TestParsePrecedence(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nX = 1 + 2 * 3 - 4 / 2\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvalExpr(loop.Body[0].RHS, NewStore(), "I", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("1+2*3-4/2 = %v, want 5", v)
	}
}

func TestParseParentheses(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nX = (1 + 2) * 3\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvalExpr(loop.Body[0].RHS, NewStore(), "I", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("(1+2)*3 = %v, want 9", v)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nX = -I + 2\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvalExpr(loop.Body[0].RHS, NewStore(), "I", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != -3 {
		t.Errorf("-I+2 at I=5 = %v, want -3", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing ENDDO", "DO I = 1, N\nA[I] = 1\n"},
		{"missing assign", "DO I = 1, N\nA[I] 1\nENDDO"},
		{"nested loop", "DO I = 1, N\nDO J = 1, N\nENDDO\nENDDO"},
		{"keyword variable", "DO DO = 1, N\nENDDO"},
		{"trailing junk", "DO I = 1, N\nA[I] = 1\nENDDO\nB = 2"},
		{"dup labels", "DO I = 1, N\nX: A[I] = 1\nX: B[I] = 2\nENDDO"},
		{"unclosed subscript", "DO I = 1, N\nA[I = 1\nENDDO"},
		{"garbage header", "FOR I = 1, N\nENDDO"},
		{"bracket expr", "DO I = 1, N\nX = [1]\nENDDO"},
		{"mismatched brackets", "DO I = 1, N\nX = (1]\nENDDO"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParsePrintRoundTripFig1(t *testing.T) {
	loop := MustParse(fig1Source)
	reparsed, err := Parse(loop.String())
	if err != nil {
		t.Fatalf("re-parse of printed loop failed: %v\n%s", err, loop)
	}
	if loop.String() != reparsed.String() {
		t.Errorf("print/parse not a fixpoint:\n%s\nvs\n%s", loop, reparsed)
	}
}

// randomExpr builds a random expression over the given variables.
func randomExpr(r *rand.Rand, depth int, arrays, scalars []string, iv string) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &Const{Value: float64(r.Intn(20)), Text: ""}
		case 1:
			return &Scalar{Name: scalars[r.Intn(len(scalars))]}
		case 2:
			return &Scalar{Name: iv}
		default:
			return &ArrayRef{
				Name:  arrays[r.Intn(len(arrays))],
				Index: &Binary{Op: OpAdd, L: &Scalar{Name: iv}, R: &Const{Value: float64(r.Intn(7) - 3)}},
			}
		}
	}
	switch r.Intn(5) {
	case 0:
		return &Neg{X: randomExpr(r, depth-1, arrays, scalars, iv)}
	default:
		return &Binary{
			Op: BinOp(r.Intn(4)),
			L:  randomExpr(r, depth-1, arrays, scalars, iv),
			R:  randomExpr(r, depth-1, arrays, scalars, iv),
		}
	}
}

// RandomLoop builds a structurally valid random loop (exported for reuse by
// other packages' property tests via the testing build).
func randomLoop(r *rand.Rand) *Loop {
	arrays := []string{"A", "B", "C"}
	scalars := []string{"P", "Q"}
	n := 1 + r.Intn(5)
	loop := &Loop{Var: "I", Lo: &Const{Value: 1}, Hi: &Scalar{Name: "N"}}
	for s := 0; s < n; s++ {
		var lhs Expr
		if r.Intn(4) == 0 {
			lhs = &Scalar{Name: scalars[r.Intn(len(scalars))]}
		} else {
			lhs = &ArrayRef{
				Name:  arrays[r.Intn(len(arrays))],
				Index: &Binary{Op: OpAdd, L: &Scalar{Name: "I"}, R: &Const{Value: float64(r.Intn(7) - 3)}},
			}
		}
		loop.Body = append(loop.Body, &Assign{RHS: randomExpr(r, 3, arrays, scalars, "I"), LHS: lhs})
	}
	// Label like the parser would.
	for i, st := range loop.Body {
		st.Label = "S" + itoa(i+1)
	}
	return loop
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := randomLoop(r)
		src := loop.String()
		reparsed, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: parse error %v on:\n%s", seed, err, src)
			return false
		}
		if reparsed.String() != src {
			t.Logf("seed %d: not a fixpoint:\n%s\nvs\n%s", seed, src, reparsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTripPreservesSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		loop := randomLoop(r)
		reparsed, err := Parse(loop.String())
		if err != nil {
			return false
		}
		n := 6
		st1 := loop.SeedStore(n, 8, uint64(seed)+1)
		st2 := st1.Clone()
		if err := loop.Run(st1); err != nil {
			// Division by zero etc. can produce runtime eval errors only for
			// non-finite subscripts; both versions must fail alike.
			err2 := reparsed.Run(st2)
			return err2 != nil
		}
		if err := reparsed.Run(st2); err != nil {
			return false
		}
		if d := st1.Diff(st2); d != "" {
			t.Logf("seed %d: diff %s", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLoopStringContainsLabels(t *testing.T) {
	loop := MustParse(fig1Source)
	s := loop.String()
	for _, want := range []string{"S1:", "S2:", "S3:", "DO I = 1, N", "ENDDO"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed loop missing %q:\n%s", want, s)
		}
	}
}
