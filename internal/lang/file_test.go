package lang

import (
	"strings"
	"testing"
)

const twoLoops = `
! first loop: recurrence
DO I = 1, N
  A[I] = A[I-1] + E[I]
ENDDO

! second loop: consumes the first loop's output
DO I = 1, N
  B[I] = A[I] * 2
ENDDO
`

func TestParseFileTwoLoops(t *testing.T) {
	f, err := ParseFile(twoLoops)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(f.Loops))
	}
	if f.Loops[0].Body[0].LHS.(*ArrayRef).Name != "A" {
		t.Error("first loop should write A")
	}
}

func TestParseFileSingleLoopCompatible(t *testing.T) {
	f, err := ParseFile("DO I = 1, N\nA[I] = 1\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Loops) != 1 {
		t.Errorf("got %d loops", len(f.Loops))
	}
}

func TestParseFileErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"! only a comment\n",
		"DO I = 1, N\nA[I] = 1\nENDDO\ngarbage",
		"DO I = 1, N\nA[I] = 1\n", // missing ENDDO
	} {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestFileRunChainsLoops(t *testing.T) {
	f := MustParseFile(twoLoops)
	st := NewStore()
	st.SetScalar("N", 5)
	st.SetElem("A", 0, 0)
	for i := 1; i <= 5; i++ {
		st.SetElem("E", i, 1)
	}
	if err := f.Run(st); err != nil {
		t.Fatal(err)
	}
	// A[i] = i (prefix sum of ones), B[i] = 2i.
	for i := 1; i <= 5; i++ {
		if st.Elem("A", i) != float64(i) {
			t.Errorf("A[%d] = %v", i, st.Elem("A", i))
		}
		if st.Elem("B", i) != float64(2*i) {
			t.Errorf("B[%d] = %v", i, st.Elem("B", i))
		}
	}
}

func TestFileStringRoundTrip(t *testing.T) {
	f := MustParseFile(twoLoops)
	again, err := ParseFile(f.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	if again.String() != f.String() {
		t.Error("file print/parse not a fixpoint")
	}
}

func TestFileArraysScalars(t *testing.T) {
	f := MustParseFile(twoLoops)
	arrays := strings.Join(f.Arrays(), ",")
	if arrays != "A,B,E" {
		t.Errorf("arrays = %s", arrays)
	}
	scalars := strings.Join(f.Scalars(), ",")
	if scalars != "N" {
		t.Errorf("scalars = %s", scalars)
	}
}

func TestFileSeedStoreCoversAllLoops(t *testing.T) {
	f := MustParseFile(twoLoops)
	st := f.SeedStore(6, 4, 1)
	if _, ok := st.Arrays["B"]; !ok {
		t.Error("seed store missing second loop's array")
	}
	if st.Scalar("N") != 6 {
		t.Error("N not set")
	}
}
