package lang

import (
	"strings"
	"testing"
)

const syncLoopSrc = `DOACROSS I = 1, N
  wait_signal(S2, I-1)
  S1: A[I] = B[I-1] + 1
  Send_Signal(S1)
  S2: B[I] = A[I-1] * 2
  Wait_Signal(S1, I)
  Wait_Signal(S1, I+2)
ENDDO
`

func TestParseSyncOps(t *testing.T) {
	l, err := Parse(syncLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Body) != 2 {
		t.Fatalf("Body = %d statements, want 2", len(l.Body))
	}
	want := []struct {
		wait   bool
		signal string
		dist   int
		at     int
	}{
		{true, "S2", 1, 0},
		{false, "S1", 0, 1},
		{true, "S1", 0, 2},
		{true, "S1", -2, 2},
	}
	if len(l.Syncs) != len(want) {
		t.Fatalf("Syncs = %d ops, want %d", len(l.Syncs), len(want))
	}
	for i, w := range want {
		o := l.Syncs[i]
		if o.Wait != w.wait || o.Signal != w.signal || o.Dist != w.dist || o.At != w.at {
			t.Errorf("op %d = {Wait:%v Signal:%s Dist:%d At:%d}, want %+v",
				i, o.Wait, o.Signal, o.Dist, o.At, w)
		}
		if o.Line == 0 || o.Col == 0 {
			t.Errorf("op %d has no source position", i)
		}
	}
}

func TestSyncOpsRoundTrip(t *testing.T) {
	l, err := Parse(syncLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := l.String()
	l2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse:\n%s\n%v", out, err)
	}
	if got := l2.String(); got != out {
		t.Errorf("print/parse not a fixpoint:\n-- first --\n%s\n-- second --\n%s", out, got)
	}
	if got := l.Clone().String(); got != out {
		t.Errorf("Clone drops sync ops:\n%s", got)
	}
	for _, frag := range []string{"Wait_Signal(S2, I-1)", "Send_Signal(S1)", "Wait_Signal(S1, I)", "Wait_Signal(S1, I+2)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed loop lacks %q:\n%s", frag, out)
		}
	}
}

func TestParseSyncErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"non-affine wait", "DO I = 1, N\nWait_Signal(S1, I*I)\nS1: A[I] = 1\nENDDO", "iteration must be"},
		{"coef 2 wait", "DO I = 1, N\nWait_Signal(S1, 2*I)\nS1: A[I] = 1\nENDDO", "iteration must be"},
		{"missing distance", "DO I = 1, N\nWait_Signal(S1)\nS1: A[I] = 1\nENDDO", "expected ','"},
		{"keyword signal", "DO I = 1, N\nSend_Signal(DO)\nS1: A[I] = 1\nENDDO", "cannot be a signal label"},
		{"trailing junk", "DO I = 1, N\nSend_Signal(S1) + 2\nS1: A[I] = 1\nENDDO", "expected end of statement"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
	// A variable merely named like the sync ops still parses as a reference
	// when it is not followed by '(' at statement head.
	if _, err := Parse("DO I = 1, N\nX = Wait_Signal + 1\nENDDO"); err != nil {
		t.Errorf("Wait_Signal as a plain scalar: %v", err)
	}
}
