// Package lang implements the miniature FORTRAN-like loop language used as
// the front end of the reproduction: a lexer, parser, AST, pretty-printer,
// and a reference sequential interpreter.
//
// The language covers the loop shapes the paper draws from the Perfect
// benchmarks: singly nested DO / DOACROSS loops over an integer induction
// variable whose bodies are assignment statements mixing array references
// with affine subscripts (A[I-2], E[I+1], ...) and scalar references
// (reductions, induction temporaries).
//
// Grammar (case-insensitive keywords):
//
//	loop    := ("DO" | "DOACROSS") ident "=" expr "," expr stmt* "ENDDO"
//	stmt    := [label ":"] ref "=" expr | sync
//	sync    := "Send_Signal" "(" ident ")" | "Wait_Signal" "(" ident "," expr ")"
//	ref     := ident | ident "[" expr "]" | ident "(" expr ")"
//	expr    := term (("+"|"-") term)*
//	term    := factor (("*"|"/") factor)*
//	factor  := number | ref | "(" expr ")" | "-" factor
//
// Both bracket styles are accepted for array subscripts so that examples can
// be written either in the paper's C-ish style (A[I-2]) or FORTRAN style
// (A(I-2)).
package lang

import (
	"fmt"
	"strings"

	"doacross/internal/diag"
)

// Expr is an expression node.
type Expr interface {
	// String renders the expression as source text.
	String() string
	exprNode()
}

// Const is an integer or floating literal. All arithmetic in the reference
// interpreter is carried out in float64, matching the paper's FORTRAN data.
type Const struct {
	Value float64
	// Text preserves the literal as written so printing round-trips.
	Text string
}

// Scalar is a reference to a scalar variable (induction variable, reduction
// accumulator, loop-invariant input, ...).
type Scalar struct {
	Name string
}

// ArrayRef is a subscripted array reference such as A[I-2].
type ArrayRef struct {
	Name  string
	Index Expr
}

// BinOp identifies a binary arithmetic operator.
type BinOp int

// Binary operators of the language.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
)

// String returns the operator's source spelling.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// Binary is a binary arithmetic expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// RelOp identifies a relational operator in an IF guard.
type RelOp int

// Relational operators.
const (
	RelLT RelOp = iota
	RelLE
	RelGT
	RelGE
	RelEQ
	RelNE
)

// String returns the operator's source spelling.
func (op RelOp) String() string {
	switch op {
	case RelLT:
		return "<"
	case RelLE:
		return "<="
	case RelGT:
		return ">"
	case RelGE:
		return ">="
	case RelEQ:
		return "=="
	case RelNE:
		return "!="
	}
	return fmt.Sprintf("RelOp(%d)", int(op))
}

// Cond is a relational guard expression (IF (L op R) ...). It is not an
// arithmetic Expr; guards appear only on statements, mirroring the
// if-converted form superscalar schedulers need (no control flow inside the
// loop body).
type Cond struct {
	Op   RelOp
	L, R Expr
}

// String renders the guard.
func (c *Cond) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Clone deep-copies the guard.
func (c *Cond) Clone() *Cond {
	if c == nil {
		return nil
	}
	return &Cond{Op: c.Op, L: CloneExpr(c.L), R: CloneExpr(c.R)}
}

// Holds evaluates the guard.
func (c *Cond) Holds(st *Store, iv string, i int) (bool, error) {
	l, err := EvalExpr(c.L, st, iv, i)
	if err != nil {
		return false, err
	}
	r, err := EvalExpr(c.R, st, iv, i)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case RelLT:
		return l < r, nil
	case RelLE:
		return l <= r, nil
	case RelGT:
		return l > r, nil
	case RelGE:
		return l >= r, nil
	case RelEQ:
		return l == r, nil
	case RelNE:
		return l != r, nil
	}
	return false, fmt.Errorf("lang: unknown relational operator %d", int(c.Op))
}

// Neg is unary negation.
type Neg struct {
	X Expr
}

func (*Const) exprNode()    {}
func (*Scalar) exprNode()   {}
func (*ArrayRef) exprNode() {}
func (*Binary) exprNode()   {}
func (*Neg) exprNode()      {}

// String renders the literal.
func (c *Const) String() string {
	if c.Text != "" {
		return c.Text
	}
	if c.Value == float64(int64(c.Value)) {
		return fmt.Sprintf("%d", int64(c.Value))
	}
	return fmt.Sprintf("%g", c.Value)
}

// String renders the scalar name.
func (s *Scalar) String() string { return s.Name }

// String renders the array reference with bracket subscripts.
func (a *ArrayRef) String() string { return a.Name + "[" + a.Index.String() + "]" }

// precedence of an expression node, used by the printer to insert the
// minimal parentheses.
func precedence(e Expr) int {
	switch v := e.(type) {
	case *Binary:
		if v.Op == OpAdd || v.Op == OpSub {
			return 1
		}
		return 2
	case *Neg:
		return 3
	default:
		return 4
	}
}

// String renders the binary expression with minimal parentheses.
func (b *Binary) String() string {
	var sb strings.Builder
	lp := precedence(b.L) < precedence(b)
	// For left-associative operators the right operand needs parens when it
	// binds at the same or lower level (a-(b+c), a/(b*c)).
	rp := precedence(b.R) <= precedence(b)
	if lp {
		sb.WriteByte('(')
	}
	sb.WriteString(b.L.String())
	if lp {
		sb.WriteByte(')')
	}
	sb.WriteString(b.Op.String())
	if rp {
		sb.WriteByte('(')
	}
	sb.WriteString(b.R.String())
	if rp {
		sb.WriteByte(')')
	}
	return sb.String()
}

// String renders the negation.
func (n *Neg) String() string {
	if precedence(n.X) < precedence(n) {
		return "-(" + n.X.String() + ")"
	}
	return "-" + n.X.String()
}

// Assign is an assignment statement: [IF (Cond)] LHS = RHS. LHS is either
// *ArrayRef or *Scalar. A non-nil Cond guards the assignment (the paper's
// type-1 "control dependence" DOACROSS loops, in if-converted single-
// statement form).
type Assign struct {
	// Label is the optional statement label (S1, S2, ...). The parser
	// assigns S<k> (1-based textual order) when no label is written, so every
	// statement can be named in diagnostics and synchronization operations.
	Label string
	Cond  *Cond
	LHS   Expr
	RHS   Expr
	// Line and Col locate the statement's first token in the source text
	// (0 for synthesized statements), letting downstream stages (tac,
	// syncop, dep) report diagnostics against the source line.
	Line, Col int
}

// Pos returns the statement's source position.
func (a *Assign) Pos() diag.Pos { return diag.Pos{Line: a.Line, Col: a.Col} }

// String renders the statement without its label.
func (a *Assign) String() string {
	s := a.LHS.String() + " = " + a.RHS.String()
	if a.Cond != nil {
		return "IF (" + a.Cond.String() + ") " + s
	}
	return s
}

// SyncOp is an explicit synchronization statement written in the source:
// Send_Signal(S1) or Wait_Signal(S1, I-2). The compiler inserts its own
// synchronization from the dependence analysis (internal/syncop); explicit
// ops exist so hand-annotated DOACROSS loops can be linted statically
// (internal/check, cmd/schedlint) against what the analysis requires.
type SyncOp struct {
	// Wait distinguishes Wait_Signal from Send_Signal.
	Wait bool
	// Signal names the statement label whose signal is sent or awaited.
	Signal string
	// Dist is the iteration distance of a Wait: Wait_Signal(S, I-d) has
	// Dist d. Sends carry no distance. A non-positive distance is accepted
	// by the parser (Wait_Signal(S, I+1) has Dist -1) so the linter can
	// report it with a source position.
	Dist int
	// At anchors the op before Body[At]; ops after the last statement have
	// At == len(Body).
	At int
	// Line and Col locate the op's first token in the source text.
	Line, Col int
}

// Pos returns the op's source position.
func (o *SyncOp) Pos() diag.Pos { return diag.Pos{Line: o.Line, Col: o.Col} }

// String renders the op; iv is the loop's induction variable (used for the
// Wait distance spelling).
func (o *SyncOp) String(iv string) string {
	if !o.Wait {
		return fmt.Sprintf("Send_Signal(%s)", o.Signal)
	}
	switch {
	case o.Dist > 0:
		return fmt.Sprintf("Wait_Signal(%s, %s-%d)", o.Signal, iv, o.Dist)
	case o.Dist < 0:
		return fmt.Sprintf("Wait_Signal(%s, %s+%d)", o.Signal, iv, -o.Dist)
	}
	return fmt.Sprintf("Wait_Signal(%s, %s)", o.Signal, iv)
}

// Loop is a singly nested DO/DOACROSS loop.
type Loop struct {
	// Doacross records whether the loop was written DOACROSS. The dependence
	// analyzer decides the actual classification; this flag only preserves
	// the source spelling.
	Doacross bool
	Var      string
	Lo, Hi   Expr
	Body     []*Assign
	// Syncs holds explicit Send_Signal/Wait_Signal statements in textual
	// order, anchored by SyncOp.At. The compile pipeline ignores them (it
	// derives synchronization from the dependence analysis); they feed the
	// source linter.
	Syncs []*SyncOp
	// Line and Col locate the loop header keyword (0 for synthesized loops).
	Line, Col int
}

// Pos returns the loop header's source position.
func (l *Loop) Pos() diag.Pos { return diag.Pos{Line: l.Line, Col: l.Col} }

// String renders the loop as source text.
func (l *Loop) String() string {
	var sb strings.Builder
	kw := "DO"
	if l.Doacross {
		kw = "DOACROSS"
	}
	fmt.Fprintf(&sb, "%s %s = %s, %s\n", kw, l.Var, l.Lo, l.Hi)
	syncs := 0
	emit := func(anchor int) {
		for ; syncs < len(l.Syncs) && l.Syncs[syncs].At <= anchor; syncs++ {
			fmt.Fprintf(&sb, "  %s\n", l.Syncs[syncs].String(l.Var))
		}
	}
	for k, st := range l.Body {
		emit(k)
		fmt.Fprintf(&sb, "  %s: %s\n", st.Label, st)
	}
	emit(len(l.Body))
	sb.WriteString("ENDDO\n")
	return sb.String()
}

// Stmt returns the statement with the given label, or nil.
func (l *Loop) Stmt(label string) *Assign {
	for _, st := range l.Body {
		if st.Label == label {
			return st
		}
	}
	return nil
}

// StmtIndex returns the 0-based position of the labeled statement, or -1.
func (l *Loop) StmtIndex(label string) int {
	for i, st := range l.Body {
		if st.Label == label {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy of the loop.
func (l *Loop) Clone() *Loop {
	out := &Loop{Doacross: l.Doacross, Var: l.Var, Lo: CloneExpr(l.Lo), Hi: CloneExpr(l.Hi), Line: l.Line, Col: l.Col}
	for _, st := range l.Body {
		out.Body = append(out.Body, &Assign{
			Label: st.Label, Cond: st.Cond.Clone(),
			LHS: CloneExpr(st.LHS), RHS: CloneExpr(st.RHS),
			Line: st.Line, Col: st.Col,
		})
	}
	for _, o := range l.Syncs {
		cp := *o
		out.Syncs = append(out.Syncs, &cp)
	}
	return out
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case *Const:
		c := *v
		return &c
	case *Scalar:
		s := *v
		return &s
	case *ArrayRef:
		return &ArrayRef{Name: v.Name, Index: CloneExpr(v.Index)}
	case *Binary:
		return &Binary{Op: v.Op, L: CloneExpr(v.L), R: CloneExpr(v.R)}
	case *Neg:
		return &Neg{X: CloneExpr(v.X)}
	case nil:
		return nil
	}
	panic(fmt.Sprintf("lang: unknown expression type %T", e))
}

// Walk calls fn for every expression node in e, parents before children.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch v := e.(type) {
	case *ArrayRef:
		Walk(v.Index, fn)
	case *Binary:
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *Neg:
		Walk(v.X, fn)
	}
}

// StmtArrayRefs returns every array reference of the statement — guard
// condition operands first, then LHS, then RHS, each left to right. It is
// the single source of truth for "all refs of a statement": subscript-margin
// computation and name collection must not forget the guard reads.
func StmtArrayRefs(st *Assign) []*ArrayRef {
	var out []*ArrayRef
	if st.Cond != nil {
		out = append(out, ArrayRefs(st.Cond.L)...)
		out = append(out, ArrayRefs(st.Cond.R)...)
	}
	out = append(out, ArrayRefs(st.LHS)...)
	return append(out, ArrayRefs(st.RHS)...)
}

// ArrayRefs returns every array reference in e in left-to-right order.
func ArrayRefs(e Expr) []*ArrayRef {
	var out []*ArrayRef
	Walk(e, func(x Expr) {
		if a, ok := x.(*ArrayRef); ok {
			out = append(out, a)
		}
	})
	return out
}

// ScalarRefs returns every scalar reference in e in left-to-right order.
// Subscript expressions are included (the induction variable shows up here).
func ScalarRefs(e Expr) []*Scalar {
	var out []*Scalar
	Walk(e, func(x Expr) {
		if s, ok := x.(*Scalar); ok {
			out = append(out, s)
		}
	})
	return out
}

// AffineIndex tries to reduce an array subscript expression to the affine
// form coef*iv + off with integer coefficients. It reports ok=false for
// subscripts that are not affine in the induction variable (e.g. A[I*I] or
// A[J] with unknown J), which the dependence analyzer treats conservatively.
func AffineIndex(e Expr, iv string) (coef, off int, ok bool) {
	c, o, ok := affine(e, iv)
	return c, o, ok
}

func affine(e Expr, iv string) (coef, off int, ok bool) {
	switch v := e.(type) {
	case *Const:
		if v.Value != float64(int64(v.Value)) {
			return 0, 0, false
		}
		return 0, int(v.Value), true
	case *Scalar:
		if v.Name == iv {
			return 1, 0, true
		}
		return 0, 0, false
	case *Neg:
		c, o, ok := affine(v.X, iv)
		return -c, -o, ok
	case *Binary:
		lc, lo, lok := affine(v.L, iv)
		rc, ro, rok := affine(v.R, iv)
		if !lok || !rok {
			return 0, 0, false
		}
		switch v.Op {
		case OpAdd:
			return lc + rc, lo + ro, true
		case OpSub:
			return lc - rc, lo - ro, true
		case OpMul:
			// Only linear products are affine.
			if lc == 0 {
				return lo * rc, lo * ro, true
			}
			if rc == 0 {
				return lc * ro, lo * ro, true
			}
			return 0, 0, false
		case OpDiv:
			return 0, 0, false
		}
	}
	return 0, 0, false
}
