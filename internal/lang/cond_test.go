package lang

import (
	"strings"
	"testing"
)

func TestParseGuardedStatement(t *testing.T) {
	loop := MustParse("DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1] + 1\nENDDO")
	st := loop.Body[0]
	if st.Cond == nil {
		t.Fatal("guard not parsed")
	}
	if st.Cond.Op != RelGT {
		t.Errorf("relop = %v, want >", st.Cond.Op)
	}
	if _, ok := st.Cond.L.(*ArrayRef); !ok {
		t.Errorf("guard LHS = %T, want array ref", st.Cond.L)
	}
}

func TestParseAllRelops(t *testing.T) {
	cases := map[string]RelOp{
		"<": RelLT, "<=": RelLE, ">": RelGT, ">=": RelGE, "==": RelEQ, "!=": RelNE,
	}
	for text, want := range cases {
		loop, err := Parse("DO I = 1, N\nIF (X " + text + " 3) A[I] = 1\nENDDO")
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if got := loop.Body[0].Cond.Op; got != want {
			t.Errorf("%s parsed as %v", text, got)
		}
	}
}

func TestGuardPrintRoundTrip(t *testing.T) {
	src := "DO I = 1, N\n  S1: IF (E[I] >= Q+1) A[I] = A[I-1]*2\nENDDO\n"
	loop := MustParse(src)
	reparsed, err := Parse(loop.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, loop)
	}
	if loop.String() != reparsed.String() {
		t.Errorf("not a fixpoint:\n%s\nvs\n%s", loop, reparsed)
	}
	if !strings.Contains(loop.String(), "IF (E[I] >= Q+1)") {
		t.Errorf("guard not printed: %s", loop)
	}
}

func TestGuardedExecution(t *testing.T) {
	// Clamp-style loop: only positive E[I] update A.
	loop := MustParse("DO I = 1, N\nIF (E[I] > 0) A[I] = E[I]\nENDDO")
	st := NewStore()
	st.SetScalar("N", 4)
	for i := 1; i <= 4; i++ {
		v := float64(i)
		if i%2 == 0 {
			v = -v
		}
		st.SetElem("E", i, v)
		st.SetElem("A", i, 99)
	}
	if err := loop.Run(st); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		want := 99.0
		if i%2 == 1 {
			want = float64(i)
		}
		if got := st.Elem("A", i); got != want {
			t.Errorf("A[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCondHoldsAllOps(t *testing.T) {
	st := NewStore()
	cases := []struct {
		op   RelOp
		l, r float64
		want bool
	}{
		{RelLT, 1, 2, true}, {RelLT, 2, 2, false},
		{RelLE, 2, 2, true}, {RelLE, 3, 2, false},
		{RelGT, 3, 2, true}, {RelGT, 2, 2, false},
		{RelGE, 2, 2, true}, {RelGE, 1, 2, false},
		{RelEQ, 2, 2, true}, {RelEQ, 1, 2, false},
		{RelNE, 1, 2, true}, {RelNE, 2, 2, false},
	}
	for _, c := range cases {
		cond := &Cond{Op: c.op, L: &Const{Value: c.l}, R: &Const{Value: c.r}}
		got, err := cond.Holds(st, "I", 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestGuardRefsInArraysAndScalars(t *testing.T) {
	loop := MustParse("DO I = 1, N\nIF (Z[I] > Q) A[I] = 1\nENDDO")
	arrays := loop.Arrays()
	found := false
	for _, a := range arrays {
		if a == "Z" {
			found = true
		}
	}
	if !found {
		t.Errorf("guard array Z missing from Arrays(): %v", arrays)
	}
	scalars := loop.Scalars()
	foundQ := false
	for _, s := range scalars {
		if s == "Q" {
			foundQ = true
		}
	}
	if !foundQ {
		t.Errorf("guard scalar Q missing from Scalars(): %v", scalars)
	}
}

func TestGuardCloneIndependent(t *testing.T) {
	loop := MustParse("DO I = 1, N\nIF (E[I] > 0) A[I] = 1\nENDDO")
	cl := loop.Clone()
	cl.Body[0].Cond.Op = RelLT
	if loop.Body[0].Cond.Op != RelGT {
		t.Error("Clone shares guard with original")
	}
}

func TestBangStillComments(t *testing.T) {
	loop, err := Parse("DO I = 1, N\nA[I] = 1 ! trailing comment with != inside is fine\nENDDO")
	if err != nil {
		t.Fatal(err)
	}
	if len(loop.Body) != 1 {
		t.Errorf("comment mishandled: %d statements", len(loop.Body))
	}
}

func TestGuardParseErrors(t *testing.T) {
	for _, src := range []string{
		"DO I = 1, N\nIF E[I] > 0 A[I] = 1\nENDDO",        // missing parens
		"DO I = 1, N\nIF (E[I]) A[I] = 1\nENDDO",          // missing relop
		"DO I = 1, N\nIF (E[I] > ) A[I] = 1\nENDDO",       // missing rhs
		"DO I = 1, N\nIF (E[I] > 0 A[I] = 1\nENDDO",       // unclosed paren
		"DO I = 1, N\nIF (A < B) IF (C < D) X = 1\nENDDO", // double guard
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}
