package lang

import "testing"

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimpleStatement(t *testing.T) {
	toks, err := Tokenize("A[I-2] = B[I] + 3")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokIdent, TokLBracket, TokIdent, TokMinus, TokNumber, TokRBracket,
		TokAssign, TokIdent, TokLBracket, TokIdent, TokRBracket,
		TokPlus, TokNumber, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeCollapsesNewlines(t *testing.T) {
	toks, err := Tokenize("A = 1\n\n\nB = 2")
	if err != nil {
		t.Fatal(err)
	}
	newlines := 0
	for _, tk := range toks {
		if tk.Kind == TokNewline {
			newlines++
		}
	}
	if newlines != 1 {
		t.Errorf("got %d newline tokens, want 1", newlines)
	}
}

func TestTokenizeComments(t *testing.T) {
	for _, src := range []string{
		"A = 1 ! trailing comment",
		"A = 1 // c-style comment",
		"! full line\nA = 1",
	} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		var idents, nums int
		for _, tk := range toks {
			switch tk.Kind {
			case TokIdent:
				idents++
			case TokNumber:
				nums++
			}
		}
		if idents != 1 || nums != 1 {
			t.Errorf("%q: idents=%d nums=%d, want 1,1", src, idents, nums)
		}
	}
}

func TestTokenizeSemicolonAsSeparator(t *testing.T) {
	toks, err := Tokenize("A = 1; B = 2")
	if err != nil {
		t.Fatal(err)
	}
	sawNewline := false
	for _, tk := range toks {
		if tk.Kind == TokNewline {
			sawNewline = true
		}
	}
	if !sawNewline {
		t.Error("semicolon should produce a statement separator token")
	}
}

func TestTokenizeParenStyle(t *testing.T) {
	toks, err := Tokenize("A(I)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokLBracket || !toks[1].Paren {
		t.Errorf("expected paren-flavored LBracket, got %+v", toks[1])
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("A = 1\nBB = 2")
	if err != nil {
		t.Fatal(err)
	}
	// Find BB.
	for _, tk := range toks {
		if tk.Text == "BB" {
			if tk.Line != 2 || tk.Col != 1 {
				t.Errorf("BB at line %d col %d, want 2,1", tk.Line, tk.Col)
			}
			return
		}
	}
	t.Fatal("BB token not found")
}

func TestTokenizeFloats(t *testing.T) {
	toks, err := Tokenize("X = 3.25")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != TokNumber || toks[2].Text != "3.25" {
		t.Errorf("got %+v, want number 3.25", toks[2])
	}
}

func TestTokenizeRejectsGarbage(t *testing.T) {
	if _, err := Tokenize("A = #"); err == nil {
		t.Error("expected error for '#'")
	}
}
