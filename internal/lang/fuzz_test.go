package lang_test

import (
	"os"
	"path/filepath"
	"testing"

	"doacross/internal/dep"
	"doacross/internal/dfg"
	"doacross/internal/lang"
	"doacross/internal/syncop"
	"doacross/internal/tac"
)

// fuzzSeeds collects the seed corpus: every kernel under testdata/kernels,
// the raw example program sources (they embed loop nests and exercise the
// lexer's rejection paths), and a set of inline edge cases.
func fuzzSeeds(f *testing.F) []string {
	f.Helper()
	seeds := []string{
		"DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO",
		"DOACROSS I = 1, 10\n S3: A[I] = B[I]*C[I+3]\nEND_DOACROSS",
		"DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1]\nENDDO",
		"DO I = 1, N\nS = S + A(I)\nENDDO",
		"DO I = 1, N\nX = (1 + 2) * -3.5 / Q\nENDDO",
		"DO I = 1, N\nA[2*I-4] = B[I] ! comment\nENDDO",
		"do i = 1, n\na[i] = 1; b[i] = 2\nenddo",
		"DO I = 1, N\nIF (A[I] != B[I]) C[I] = 0\nENDDO",
		"",
		"DO",
		"DO I = 1, N\nA[I] = \nENDDO",
	}
	for _, pattern := range []string{
		filepath.Join("..", "..", "testdata", "kernels", "*.loop"),
		filepath.Join("..", "..", "examples", "*", "main.go"),
	} {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, string(b))
		}
	}
	return seeds
}

// FuzzParse feeds arbitrary input through the whole front end: parsing must
// never panic, anything accepted must survive a print/parse round trip
// unchanged, and the accepted loop must flow through dependence analysis,
// synchronization insertion, TAC generation and DFG construction without
// panicking. The synchronized DOACROSS rendering must also be stable: the
// reparsed base loop inserts the same Wait/Send operations.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		loop, err := lang.Parse(src)
		if err != nil {
			return
		}
		printed := loop.String()
		again, err := lang.Parse(printed)
		if err != nil {
			t.Fatalf("accepted input prints to rejected source:\ninput: %q\nprinted:\n%s\nerror: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", printed, again.String())
		}
		if len(loop.Body) > 64 {
			// Dependence analysis is quadratic in the body; bound the work
			// per input so the fuzzer spends its budget on the parser.
			return
		}
		// The compile pipeline may reject the loop (e.g. unschedulable
		// shapes) but must never panic.
		analysis := dep.Analyze(loop)
		sync := syncop.Insert(analysis, syncop.Options{})
		doacross := sync.String()
		// Round trip: the same source must synchronize identically.
		if sync2 := syncop.Insert(dep.Analyze(again), syncop.Options{}); sync2.String() != doacross {
			t.Fatalf("DoacrossSource not stable under reparse:\n%s\nvs\n%s", doacross, sync2.String())
		}
		prog, err := tac.Generate(sync)
		if err != nil {
			return
		}
		if _, err := dfg.Build(prog, analysis); err != nil {
			return
		}
	})
}
