package lang

import "testing"

// FuzzParse exercises the lexer/parser with arbitrary input: it must never
// panic, and anything it accepts must print to source it accepts again with
// the same rendering (print∘parse is a fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO",
		"DOACROSS I = 1, 10\n S3: A[I] = B[I]*C[I+3]\nEND_DOACROSS",
		"DO I = 1, N\nIF (E[I] > 0) A[I] = A[I-1]\nENDDO",
		"DO I = 1, N\nS = S + A(I)\nENDDO",
		"DO I = 1, N\nX = (1 + 2) * -3.5 / Q\nENDDO",
		"DO I = 1, N\nA[2*I-4] = B[I] ! comment\nENDDO",
		"do i = 1, n\na[i] = 1; b[i] = 2\nenddo",
		"DO I = 1, N\nIF (A[I] != B[I]) C[I] = 0\nENDDO",
		"",
		"DO",
		"DO I = 1, N\nA[I] = \nENDDO",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		loop, err := Parse(src)
		if err != nil {
			return
		}
		printed := loop.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted input prints to rejected source:\ninput: %q\nprinted:\n%s\nerror: %v", src, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", printed, again.String())
		}
	})
}
