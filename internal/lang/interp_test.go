package lang

import (
	"math"
	"testing"
)

func TestRunRecurrence(t *testing.T) {
	// A[I] = A[I-1] + 1, A[0] = 0  =>  A[i] = i.
	loop := MustParse("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	st := NewStore()
	st.SetScalar("N", 10)
	if err := loop.Run(st); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if got := st.Elem("A", i); got != float64(i) {
			t.Errorf("A[%d] = %v, want %d", i, got, i)
		}
	}
}

func TestRunReduction(t *testing.T) {
	loop := MustParse("DO I = 1, N\nS = S + A[I]\nENDDO")
	st := NewStore()
	st.SetScalar("N", 5)
	for i := 1; i <= 5; i++ {
		st.SetElem("A", i, float64(i))
	}
	if err := loop.Run(st); err != nil {
		t.Fatal(err)
	}
	if got := st.Scalar("S"); got != 15 {
		t.Errorf("S = %v, want 15", got)
	}
}

func TestRunFig1MatchesManual(t *testing.T) {
	loop := MustParse(fig1Source)
	st := loop.SeedStore(8, 8, 42)
	ref := st.Clone()
	if err := loop.Run(st); err != nil {
		t.Fatal(err)
	}
	// Manual execution of the same semantics.
	for i := 1; i <= 8; i++ {
		b := ref.Elem("A", i-2) + ref.Elem("E", i+1)
		ref.SetElem("B", i, b)
		ref.SetElem("G", i-3, ref.Elem("A", i-1)*ref.Elem("E", i+2))
		ref.SetElem("A", i, ref.Elem("B", i)+ref.Elem("C", i+3))
	}
	if d := st.Diff(ref); d != "" {
		t.Errorf("interpreter mismatch: %s", d)
	}
}

func TestRunIterationMatchesRun(t *testing.T) {
	loop := MustParse(fig1Source)
	whole := loop.SeedStore(6, 8, 7)
	stepwise := whole.Clone()
	if err := loop.Run(whole); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := loop.RunIteration(stepwise, i); err != nil {
			t.Fatal(err)
		}
	}
	if d := whole.Diff(stepwise); d != "" {
		t.Errorf("Run vs RunIteration: %s", d)
	}
}

func TestBounds(t *testing.T) {
	loop := MustParse("DO I = 2, N\nA[I] = 0\nENDDO")
	st := NewStore()
	st.SetScalar("N", 9)
	lo, hi, err := loop.Bounds(st)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 2 || hi != 9 {
		t.Errorf("bounds = (%d,%d), want (2,9)", lo, hi)
	}
}

func TestZeroTripLoop(t *testing.T) {
	loop := MustParse("DO I = 5, N\nA[I] = 99\nENDDO")
	st := NewStore()
	st.SetScalar("N", 2)
	before := st.Clone()
	if err := loop.Run(st); err != nil {
		t.Fatal(err)
	}
	if d := st.Diff(before); d != "" {
		t.Errorf("zero-trip loop modified store: %s", d)
	}
}

func TestAssignToInductionVarFails(t *testing.T) {
	loop := MustParse("DO I = 1, N\nI = 3\nENDDO")
	st := NewStore()
	st.SetScalar("N", 1)
	if err := loop.Run(st); err == nil {
		t.Error("expected error assigning to induction variable")
	}
}

func TestStoreCloneIndependence(t *testing.T) {
	st := NewStore()
	st.SetElem("A", 1, 5)
	st.SetScalar("X", 7)
	cl := st.Clone()
	cl.SetElem("A", 1, 99)
	cl.SetScalar("X", 0)
	if st.Elem("A", 1) != 5 || st.Scalar("X") != 7 {
		t.Error("Clone is not independent of original")
	}
}

func TestStoreDiffNaN(t *testing.T) {
	a := NewStore()
	b := NewStore()
	a.SetScalar("X", math.NaN())
	b.SetScalar("X", math.NaN())
	if d := a.Diff(b); d != "" {
		t.Errorf("NaN should equal NaN in Diff, got %q", d)
	}
	b.SetScalar("X", 1)
	if d := a.Diff(b); d == "" {
		t.Error("NaN vs 1 should differ")
	}
}

func TestAffineIndex(t *testing.T) {
	cases := []struct {
		src       string
		coef, off int
		ok        bool
	}{
		{"I", 1, 0, true},
		{"I-2", 1, -2, true},
		{"I+3", 1, 3, true},
		{"2*I+1", 2, 1, true},
		{"I*3-4", 3, -4, true},
		{"-I", -1, 0, true},
		{"5", 0, 5, true},
		{"I*I", 0, 0, false},
		{"J", 0, 0, false},
		{"I/2", 0, 0, false},
		{"(I+1)*2", 2, 2, true},
	}
	for _, c := range cases {
		loop, err := Parse("DO I = 1, N\nA[" + c.src + "] = 0\nENDDO")
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		idx := loop.Body[0].LHS.(*ArrayRef).Index
		coef, off, ok := AffineIndex(idx, "I")
		if ok != c.ok || (ok && (coef != c.coef || off != c.off)) {
			t.Errorf("AffineIndex(%q) = (%d,%d,%v), want (%d,%d,%v)", c.src, coef, off, ok, c.coef, c.off, c.ok)
		}
	}
}

func TestArraysAndScalars(t *testing.T) {
	loop := MustParse(fig1Source)
	arrays := loop.Arrays()
	want := []string{"A", "B", "C", "E", "G"}
	if len(arrays) != len(want) {
		t.Fatalf("arrays = %v, want %v", arrays, want)
	}
	for i := range want {
		if arrays[i] != want[i] {
			t.Errorf("arrays[%d] = %q, want %q", i, arrays[i], want[i])
		}
	}
	scalars := loop.Scalars()
	if len(scalars) != 1 || scalars[0] != "N" {
		t.Errorf("scalars = %v, want [N]", scalars)
	}
}

func TestCloneDeep(t *testing.T) {
	loop := MustParse(fig1Source)
	cl := loop.Clone()
	cl.Body[0].LHS.(*ArrayRef).Name = "Z"
	if loop.Body[0].LHS.(*ArrayRef).Name != "B" {
		t.Error("Clone shares expression nodes with original")
	}
	if cl.String() == loop.String() {
		t.Error("mutation of clone should change its rendering")
	}
}

func TestSeedStoreDeterministic(t *testing.T) {
	loop := MustParse(fig1Source)
	a := loop.SeedStore(10, 8, 3)
	b := loop.SeedStore(10, 8, 3)
	if d := a.Diff(b); d != "" {
		t.Errorf("SeedStore not deterministic: %s", d)
	}
	c := loop.SeedStore(10, 8, 4)
	if a.Diff(c) == "" {
		t.Error("different seeds should give different stores")
	}
}
