package lang

import (
	"fmt"
	"math"
	"sort"
)

// Store is the memory state the interpreter (and the simulators) operate on:
// named scalars plus named arrays with arbitrary (possibly negative) integer
// indices. Sparse maps are used because paper-style subscripts like G[I-3]
// step outside any fixed bound.
type Store struct {
	Scalars map[string]float64
	Arrays  map[string]map[int]float64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{Scalars: map[string]float64{}, Arrays: map[string]map[int]float64{}}
}

// Clone deep-copies the store.
func (s *Store) Clone() *Store {
	out := NewStore()
	for k, v := range s.Scalars {
		out.Scalars[k] = v
	}
	for name, arr := range s.Arrays {
		m := make(map[int]float64, len(arr))
		for i, v := range arr {
			m[i] = v
		}
		out.Arrays[name] = m
	}
	return out
}

// SetScalar stores a scalar value.
func (s *Store) SetScalar(name string, v float64) { s.Scalars[name] = v }

// Scalar loads a scalar, defaulting to 0.
func (s *Store) Scalar(name string) float64 { return s.Scalars[name] }

// SetElem stores an array element.
func (s *Store) SetElem(name string, idx int, v float64) {
	arr := s.Arrays[name]
	if arr == nil {
		arr = map[int]float64{}
		s.Arrays[name] = arr
	}
	arr[idx] = v
}

// Elem loads an array element, defaulting to 0.
func (s *Store) Elem(name string, idx int) float64 { return s.Arrays[name][idx] }

// Equal reports whether two stores hold identical values. NaNs compare equal
// to themselves so that division artifacts do not produce spurious
// mismatches in differential tests.
func (s *Store) Equal(o *Store) bool {
	return s.Diff(o) == ""
}

// Diff returns a human-readable description of the first few differences
// between two stores, or "" when they are identical.
func (s *Store) Diff(o *Store) string {
	var diffs []string
	names := map[string]bool{}
	for k := range s.Scalars {
		names[k] = true
	}
	for k := range o.Scalars {
		names[k] = true
	}
	for _, k := range sortedKeys(names) {
		a, b := s.Scalars[k], o.Scalars[k]
		if !sameFloat(a, b) {
			diffs = append(diffs, fmt.Sprintf("scalar %s: %g vs %g", k, a, b))
		}
	}
	arrNames := map[string]bool{}
	for k := range s.Arrays {
		arrNames[k] = true
	}
	for k := range o.Arrays {
		arrNames[k] = true
	}
	for _, name := range sortedKeys(arrNames) {
		idxs := map[int]bool{}
		for i := range s.Arrays[name] {
			idxs[i] = true
		}
		for i := range o.Arrays[name] {
			idxs[i] = true
		}
		var sortedIdx []int
		for i := range idxs {
			sortedIdx = append(sortedIdx, i)
		}
		sort.Ints(sortedIdx)
		for _, i := range sortedIdx {
			a, b := s.Arrays[name][i], o.Arrays[name][i]
			if !sameFloat(a, b) {
				diffs = append(diffs, fmt.Sprintf("%s[%d]: %g vs %g", name, i, a, b))
				if len(diffs) >= 8 {
					return joinDiffs(diffs) + "; ..."
				}
			}
		}
	}
	return joinDiffs(diffs)
}

func joinDiffs(d []string) string {
	out := ""
	for i, s := range d {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EvalExpr evaluates e against the store with the induction variable iv
// bound to i. Array subscripts are truncated toward zero after evaluation,
// matching FORTRAN integer subscript semantics.
func EvalExpr(e Expr, st *Store, iv string, i int) (float64, error) {
	switch v := e.(type) {
	case *Const:
		return v.Value, nil
	case *Scalar:
		if v.Name == iv {
			return float64(i), nil
		}
		return st.Scalar(v.Name), nil
	case *ArrayRef:
		idx, err := EvalIndex(v.Index, st, iv, i)
		if err != nil {
			return 0, err
		}
		return st.Elem(v.Name, idx), nil
	case *Neg:
		x, err := EvalExpr(v.X, st, iv, i)
		return -x, err
	case *Binary:
		l, err := EvalExpr(v.L, st, iv, i)
		if err != nil {
			return 0, err
		}
		r, err := EvalExpr(v.R, st, iv, i)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case OpAdd:
			return l + r, nil
		case OpSub:
			return l - r, nil
		case OpMul:
			return l * r, nil
		case OpDiv:
			return l / r, nil
		}
	}
	return 0, fmt.Errorf("lang: cannot evaluate expression %T", e)
}

// EvalIndex evaluates an array subscript to an integer index.
func EvalIndex(e Expr, st *Store, iv string, i int) (int, error) {
	v, err := EvalExpr(e, st, iv, i)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("lang: non-finite array subscript %v", v)
	}
	return int(v), nil
}

// Bounds evaluates the loop's trip bounds against the store. The bounds may
// reference scalars (typically N).
func (l *Loop) Bounds(st *Store) (lo, hi int, err error) {
	lov, err := EvalExpr(l.Lo, st, l.Var, 0)
	if err != nil {
		return 0, 0, err
	}
	hiv, err := EvalExpr(l.Hi, st, l.Var, 0)
	if err != nil {
		return 0, 0, err
	}
	return int(lov), int(hiv), nil
}

// Run executes the loop sequentially against st — the reference semantics
// every scheduler and simulator output is compared to.
func (l *Loop) Run(st *Store) error {
	lo, hi, err := l.Bounds(st)
	if err != nil {
		return err
	}
	for i := lo; i <= hi; i++ {
		for _, stmt := range l.Body {
			if err := execAssign(stmt, st, l.Var, i); err != nil {
				return fmt.Errorf("lang: iteration %d, statement %s: %w", i, stmt.Label, err)
			}
		}
	}
	return nil
}

// RunIteration executes a single iteration i of the loop body.
func (l *Loop) RunIteration(st *Store, i int) error {
	for _, stmt := range l.Body {
		if err := execAssign(stmt, st, l.Var, i); err != nil {
			return fmt.Errorf("lang: iteration %d, statement %s: %w", i, stmt.Label, err)
		}
	}
	return nil
}

func execAssign(a *Assign, st *Store, iv string, i int) error {
	if a.Cond != nil {
		holds, err := a.Cond.Holds(st, iv, i)
		if err != nil {
			return err
		}
		if !holds {
			return nil
		}
	}
	val, err := EvalExpr(a.RHS, st, iv, i)
	if err != nil {
		return err
	}
	switch lhs := a.LHS.(type) {
	case *Scalar:
		if lhs.Name == iv {
			return fmt.Errorf("assignment to induction variable %s", iv)
		}
		st.SetScalar(lhs.Name, val)
		return nil
	case *ArrayRef:
		idx, err := EvalIndex(lhs.Index, st, iv, i)
		if err != nil {
			return err
		}
		st.SetElem(lhs.Name, idx, val)
		return nil
	}
	return fmt.Errorf("invalid assignment target %T", a.LHS)
}

// Arrays returns the sorted set of array names referenced by the loop.
func (l *Loop) Arrays() []string {
	set := map[string]bool{}
	for _, st := range l.Body {
		for _, r := range StmtArrayRefs(st) {
			set[r.Name] = true
		}
	}
	return sortedKeys(set)
}

// Scalars returns the sorted set of scalar names referenced by the loop,
// excluding the induction variable.
func (l *Loop) Scalars() []string {
	set := map[string]bool{}
	add := func(e Expr) {
		for _, r := range ScalarRefs(e) {
			if r.Name != l.Var {
				set[r.Name] = true
			}
		}
	}
	add(l.Lo)
	add(l.Hi)
	for _, st := range l.Body {
		add(st.LHS)
		add(st.RHS)
		if st.Cond != nil {
			add(st.Cond.L)
			add(st.Cond.R)
		}
	}
	return sortedKeys(set)
}

// SeedStore returns a store with deterministic pseudo-random contents for
// every array and scalar the loop touches, covering subscript offsets within
// margin of the iteration range [1, n]. Used by differential tests.
func (l *Loop) SeedStore(n, margin int, seed uint64) *Store {
	st := NewStore()
	x := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		// Small magnitudes keep float64 arithmetic exact enough for == checks
		// across different evaluation orders of the *same* dependence-honoring
		// schedule.
		return float64(int64(x%2048) - 1024)
	}
	for _, name := range l.Scalars() {
		st.SetScalar(name, next())
	}
	st.SetScalar("N", float64(n))
	for _, name := range l.Arrays() {
		for i := 1 - margin; i <= n+margin; i++ {
			st.SetElem(name, i, next())
		}
	}
	return st
}
