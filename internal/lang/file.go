package lang

import (
	"fmt"
	"strings"
)

// File is a parsed source file: a sequence of DO/DOACROSS loops executed one
// after another, sharing the same store — the shape of the paper's
// benchmark programs, where Parafrase extracts many loops from one source.
type File struct {
	Loops []*Loop
}

// ParseFile parses a sequence of loops. Loops follow each other separated by
// newlines; comments and blank lines are allowed anywhere.
func ParseFile(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for {
		p.skipNewlines()
		if p.peek().Kind == TokEOF {
			break
		}
		loop, err := p.parseLoop()
		if err != nil {
			return nil, fmt.Errorf("loop %d: %w", len(f.Loops)+1, err)
		}
		f.Loops = append(f.Loops, loop)
	}
	if len(f.Loops) == 0 {
		return nil, fmt.Errorf("lang: file contains no loops")
	}
	return f, nil
}

// MustParseFile is ParseFile panicking on error.
func MustParseFile(src string) *File {
	f, err := ParseFile(src)
	if err != nil {
		panic(err)
	}
	return f
}

// String renders the file as source text.
func (f *File) String() string {
	var sb strings.Builder
	for i, l := range f.Loops {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(l.String())
	}
	return sb.String()
}

// Run executes all loops sequentially against the store.
func (f *File) Run(st *Store) error {
	for i, l := range f.Loops {
		if err := l.Run(st); err != nil {
			return fmt.Errorf("lang: loop %d: %w", i+1, err)
		}
	}
	return nil
}

// Arrays returns the sorted union of array names across all loops.
func (f *File) Arrays() []string {
	set := map[string]bool{}
	for _, l := range f.Loops {
		for _, a := range l.Arrays() {
			set[a] = true
		}
	}
	return sortedKeys(set)
}

// Scalars returns the sorted union of scalar names across all loops.
func (f *File) Scalars() []string {
	set := map[string]bool{}
	for _, l := range f.Loops {
		for _, s := range l.Scalars() {
			set[s] = true
		}
	}
	return sortedKeys(set)
}

// SeedStore seeds data for every loop in the file, covering subscripts
// within margin of [1, n].
func (f *File) SeedStore(n, margin int, seed uint64) *Store {
	st := NewStore()
	x := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(int64(x%2048) - 1024)
	}
	for _, name := range f.Scalars() {
		st.SetScalar(name, next())
	}
	st.SetScalar("N", float64(n))
	for _, name := range f.Arrays() {
		for i := 1 - margin; i <= n+margin; i++ {
			st.SetElem(name, i, next())
		}
	}
	return st
}
