package lang

import (
	"fmt"
	"strconv"
	"strings"

	"doacross/internal/diag"
)

// ParseError is the structured syntax-error type: a diag.Diagnostic whose
// Stage is "lang" and whose Pos locates the offending token. The rendered
// form is unchanged ("lang: line 3 col 7: ...").
type ParseError = diag.Diagnostic

type parser struct {
	toks []Token
	pos  int
	// AST nodes come from pointer-stable slabs: node identity (e.g.
	// *ArrayRef as a map key in dep and tac) needs distinct stable
	// addresses, which fixed-capacity chunks provide without one heap
	// object per node.
	binarys slab[Binary]
	refs    slab[ArrayRef]
	scalars slab[Scalar]
	consts  slab[Const]
	negs    slab[Neg]
	assigns slab[Assign]
}

// slab hands out pointer-stable T storage in fixed-capacity chunks (a
// chunk's backing array never reallocates).
type slab[T any] struct {
	chunks [][]T
}

const slabChunk = 32

func (s *slab[T]) alloc() *T {
	k := len(s.chunks) - 1
	if k < 0 || len(s.chunks[k]) == cap(s.chunks[k]) {
		s.chunks = append(s.chunks, make([]T, 0, slabChunk))
		k++
	}
	var zero T
	s.chunks[k] = append(s.chunks[k], zero)
	return &s.chunks[k][len(s.chunks[k])-1]
}

func (p *parser) newBinary(op BinOp, l, r Expr) *Binary {
	b := p.binarys.alloc()
	b.Op, b.L, b.R = op, l, r
	return b
}

// Parse parses a single DO/DOACROSS loop from src. Statements without an
// explicit label get S<k> labels in textual order (matching the paper's
// S1..S3 convention).
func Parse(src string) (*Loop, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.skipNewlines()
	loop, err := p.parseLoop()
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if t := p.peek(); t.Kind != TokEOF {
		return nil, p.errorf(t, "unexpected %s after ENDDO", t.Kind)
	}
	return loop, nil
}

// MustParse parses src and panics on error. Intended for tests and for
// compile-time-constant loop literals in examples.
func MustParse(src string) *Loop {
	l, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return l
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t Token, format string, args ...any) error {
	return diag.Errorf("lang", diag.Pos{Line: t.Line, Col: t.Col}, format, args...)
}

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != k {
		return t, p.errorf(t, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	return t, nil
}

func (p *parser) skipNewlines() {
	for p.peek().Kind == TokNewline {
		p.next()
	}
}

func (p *parser) parseLoop() (*Loop, error) {
	kw := p.next()
	if kw.Kind != TokIdent {
		return nil, p.errorf(kw, "expected DO or DOACROSS, found %s %q", kw.Kind, kw.Text)
	}
	var doacross bool
	switch keywordOf(kw.Text) {
	case "DO":
	case "DOACROSS":
		doacross = true
	default:
		return nil, p.errorf(kw, "expected DO or DOACROSS, found %q", kw.Text)
	}
	ivTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if keywordOf(ivTok.Text) != "" {
		return nil, p.errorf(ivTok, "keyword %q cannot be an induction variable", ivTok.Text)
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokNewline && t.Kind != TokEOF {
		return nil, p.errorf(t, "expected end of line after loop header, found %s %q", t.Kind, t.Text)
	}
	loop := &Loop{Doacross: doacross, Var: ivTok.Text, Lo: lo, Hi: hi, Line: kw.Line, Col: kw.Col}
	used := map[string]bool{}
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == TokEOF {
			return nil, p.errorf(t, "missing ENDDO")
		}
		if t.Kind == TokIdent {
			switch keywordOf(t.Text) {
			case "ENDDO", "END_DOACROSS":
				p.next()
				p.normalizeLabels(loop, used)
				return loop, nil
			case "DO", "DOACROSS":
				return nil, p.errorf(t, "nested loops are not supported by this subset")
			}
		}
		if t.Kind == TokIdent && isSyncIdent(t.Text) && p.peekN(1).Kind == TokLBracket && p.peekN(1).Paren {
			op, err := p.parseSync(loop)
			if err != nil {
				return nil, err
			}
			loop.Syncs = append(loop.Syncs, op)
			continue
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if st.Label != "" {
			if used[st.Label] {
				return nil, p.errorf(t, "duplicate statement label %q", st.Label)
			}
			used[st.Label] = true
		}
		loop.Body = append(loop.Body, st)
	}
}

// normalizeLabels assigns S<k> to unlabeled statements, skipping labels that
// were used explicitly.
func (p *parser) normalizeLabels(loop *Loop, used map[string]bool) {
	k := 1
	for _, st := range loop.Body {
		if st.Label != "" {
			continue
		}
		for {
			cand := fmt.Sprintf("S%d", k)
			k++
			if !used[cand] {
				st.Label = cand
				used[cand] = true
				break
			}
		}
	}
}

// isSyncIdent reports whether ident spells an explicit synchronization
// statement. Like keywords, the spelling is case-insensitive; unlike
// keywords, the ident only acts as a statement when followed by '(' at
// statement head, so variables of the same name stay usable in expressions.
func isSyncIdent(ident string) bool {
	return strings.EqualFold(ident, "Send_Signal") || strings.EqualFold(ident, "Wait_Signal")
}

// parseSync parses an explicit synchronization statement:
//
//	Send_Signal(label)
//	Wait_Signal(label, iv-d)
//
// The Wait iteration expression must be affine in the loop's induction
// variable with coefficient 1; its constant offset becomes -Dist.
func (p *parser) parseSync(loop *Loop) (*SyncOp, error) {
	kw := p.next()
	op := &SyncOp{Wait: strings.EqualFold(kw.Text, "Wait_Signal"), At: len(loop.Body), Line: kw.Line, Col: kw.Col}
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	sig, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if keywordOf(sig.Text) != "" {
		return nil, p.errorf(sig, "keyword %q cannot be a signal label", sig.Text)
	}
	op.Signal = sig.Text
	if op.Wait {
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		it, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		coef, off, ok := AffineIndex(it, loop.Var)
		if !ok || coef != 1 {
			return nil, p.errorf(kw, "Wait_Signal iteration must be %s, %s-d or %s+d", loop.Var, loop.Var, loop.Var)
		}
		op.Dist = -off
	}
	cl, err := p.expect(TokRBracket)
	if err != nil {
		return nil, err
	}
	if !cl.Paren {
		return nil, p.errorf(cl, "mismatched ')' and ']'")
	}
	if t := p.peek(); t.Kind != TokNewline && t.Kind != TokEOF {
		return nil, p.errorf(t, "expected end of statement, found %s %q", t.Kind, t.Text)
	}
	return op, nil
}

func (p *parser) parseStmt() (*Assign, error) {
	label := ""
	first := p.peek()
	// Optional label: IDENT ':'.
	if p.peek().Kind == TokIdent && p.peekN(1).Kind == TokColon {
		label = p.next().Text
		p.next() // colon
	}
	// Optional guard: IF ( expr relop expr ).
	var cond *Cond
	if t := p.peek(); t.Kind == TokIdent && keywordOf(t.Text) == "IF" {
		p.next()
		open, err := p.expect(TokLBracket)
		if err != nil {
			return nil, err
		}
		if !open.Paren {
			return nil, p.errorf(open, "IF guard requires parentheses")
		}
		cond, err = p.parseCond()
		if err != nil {
			return nil, err
		}
		cl, err := p.expect(TokRBracket)
		if err != nil {
			return nil, err
		}
		if !cl.Paren {
			return nil, p.errorf(cl, "IF guard requires parentheses")
		}
	}
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokNewline && t.Kind != TokEOF {
		return nil, p.errorf(t, "expected end of statement, found %s %q", t.Kind, t.Text)
	}
	st := p.assigns.alloc()
	*st = Assign{Label: label, Cond: cond, LHS: lhs, RHS: rhs, Line: first.Line, Col: first.Col}
	return st, nil
}

// parseCond parses the relational guard body: expr relop expr.
func (p *parser) parseCond() (*Cond, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	rel, err := p.expect(TokRel)
	if err != nil {
		return nil, err
	}
	var op RelOp
	switch rel.Text {
	case "<":
		op = RelLT
	case "<=":
		op = RelLE
	case ">":
		op = RelGT
	case ">=":
		op = RelGE
	case "==":
		op = RelEQ
	case "!=":
		op = RelNE
	default:
		return nil, p.errorf(rel, "unknown relational operator %q", rel.Text)
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{Op: op, L: l, R: r}, nil
}

// parseRef parses an assignable reference: a scalar or a subscripted array.
func (p *parser) parseRef() (Expr, error) {
	id, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if keywordOf(id.Text) != "" {
		return nil, p.errorf(id, "keyword %q cannot be a variable", id.Text)
	}
	if p.peek().Kind == TokLBracket {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		a := p.refs.alloc()
		a.Name, a.Index = id.Text, idx
		return a, nil
	}
	sc := p.scalars.alloc()
	sc.Name = id.Text
	return sc, nil
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokPlus:
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = p.newBinary(OpAdd, left, right)
		case TokMinus:
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = p.newBinary(OpSub, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokStar:
			p.next()
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = p.newBinary(OpMul, left, right)
		case TokSlash:
			p.next()
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = p.newBinary(OpDiv, left, right)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		n := p.negs.alloc()
		n.X = x
		return n, nil
	case TokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf(t, "bad number %q: %v", t.Text, err)
		}
		c := p.consts.alloc()
		c.Value, c.Text = v, canonicalNumber(t.Text)
		return c, nil
	case TokIdent:
		if keywordOf(t.Text) != "" {
			return nil, p.errorf(t, "keyword %q cannot appear in an expression", t.Text)
		}
		return p.parseRef()
	case TokLBracket:
		// Parenthesized sub-expression. Only the '(' spelling is allowed
		// here; '[' is reserved for subscripts.
		if !t.Paren {
			return nil, p.errorf(t, "'[' is only valid as an array subscript")
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cl, err := p.expect(TokRBracket)
		if err != nil {
			return nil, err
		}
		if !cl.Paren {
			return nil, p.errorf(cl, "mismatched ')' and ']'")
		}
		return e, nil
	}
	return nil, p.errorf(t, "expected expression, found %s %q", t.Kind, t.Text)
}

// canonicalNumber strips redundant leading zeros so printing round-trips
// through the lexer stably.
func canonicalNumber(s string) string {
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
		if s == "" {
			s = "0"
		}
		return s
	}
	trimmed := strings.TrimLeft(s, "0")
	if trimmed == "" {
		return "0"
	}
	return trimmed
}
