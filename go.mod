module doacross

go 1.22
