package doacross

import (
	"context"
	"fmt"

	"doacross/internal/core"
	"doacross/internal/obs"
	"doacross/internal/pipeline"
)

// Batch scheduling: the facade over internal/pipeline, the worker-pool
// service that compiles, schedules and simulates many loops concurrently
// with a content-addressed schedule cache and an embedded metrics registry.
//
//	cache := doacross.NewScheduleCache()
//	batch, err := doacross.ScheduleAll(sources, doacross.BatchOptions{
//		Workers:  8,
//		Machines: doacross.PaperMachines(),
//		Cache:    cache,
//	})
//	fmt.Print(batch.Stats)
type (
	// Batch is the result of one batch run: per-loop results in request
	// order plus a metrics snapshot.
	Batch = pipeline.Batch
	// BatchOptions configures a batch run (workers, machines, trip count,
	// baseline, ablation knobs, cache, metrics).
	BatchOptions = pipeline.Options
	// BatchRequest is one loop to schedule (source text or parsed Loop).
	BatchRequest = pipeline.Request
	// BatchLoop is one loop's batch result.
	BatchLoop = pipeline.LoopResult
	// BatchMachineResult is one loop's outcome on one machine.
	BatchMachineResult = pipeline.MachineResult
	// BatchStats is a snapshot of the pipeline metrics registry.
	BatchStats = pipeline.Stats
	// BatchMetrics is the shared metrics registry type.
	BatchMetrics = pipeline.Metrics
	// ScheduleCache is the sharded content-addressed schedule cache. Keys
	// fingerprint the loop's data-flow graph plus the machine configuration
	// and scheduler options, so structurally repeated loops — trip-count or
	// machine sweeps over one corpus — skip scheduling entirely.
	ScheduleCache = pipeline.Cache
	// ListPriority selects the baseline list scheduler's priority.
	ListPriority = core.ListPriority
	// TraceRecorder is the span recorder of the observability layer: set
	// one as BatchOptions.Observer and every batch, request, stage and
	// compilation pass records a span into its bounded lock-free ring
	// buffer. Snapshot() returns the finished spans; WriteChromeTrace
	// exports them as Chrome trace_event JSON (loadable in Perfetto) and
	// WriteJSONL as a structured event log. A nil recorder disables
	// tracing at the cost of one nil check per would-be span.
	TraceRecorder = obs.Recorder
	// TraceSpan is one recorded span (batch → request → stage → pass).
	TraceSpan = obs.Span
	// TraceSpanKind is a span's level in the hierarchy.
	TraceSpanKind = obs.Kind
	// AdminServer is the HTTP observability surface (/metrics, /stats,
	// /trace, /healthz, /debug/pprof) over a recorder and a metrics
	// registry.
	AdminServer = obs.Server
)

// Baseline priorities for BatchOptions.Baseline.
const (
	// BaselineProgramOrder ranks ready instructions by source position.
	BaselineProgramOrder = core.ProgramOrder
	// BaselineCriticalPath ranks by longest latency-weighted path to a sink.
	BaselineCriticalPath = core.CriticalPath
)

// NewScheduleCache returns an empty schedule cache, shareable across
// batches and goroutines.
func NewScheduleCache() *ScheduleCache { return pipeline.NewCache() }

// NewBatchMetrics returns an empty metrics registry; pass the same registry
// to several batches to aggregate their counters.
func NewBatchMetrics() *BatchMetrics { return pipeline.NewMetrics() }

// NewTraceRecorder returns a span recorder whose ring holds at least n
// spans (n <= 0 picks the default capacity). Pass it as
// BatchOptions.Observer to trace a batch end to end.
func NewTraceRecorder(n int) *TraceRecorder { return obs.NewRecorder(n) }

// NewBoundedScheduleCache returns a schedule cache holding at most capacity
// entries; over the bound, arbitrary entries are evicted (and counted in
// BatchStats.CacheEvictions). Every cached value is a pure function of its
// key, so eviction costs a recompute, never correctness.
func NewBoundedScheduleCache(capacity int) *ScheduleCache {
	return pipeline.NewCacheBounded(capacity)
}

// NewAdminServer wires an admin server over a metrics registry and a span
// recorder (either may be nil; the corresponding endpoints then 404).
// Start it with Serve(addr string) — e.g. ":8080" or ":0" — and stop it
// with Close.
func NewAdminServer(metrics *BatchMetrics, rec *TraceRecorder) *AdminServer {
	srv := &AdminServer{Recorder: rec}
	if metrics != nil {
		srv.Metrics = metrics.WritePrometheus
		srv.Stats = func() any { return metrics.Stats() }
	}
	return srv
}

// ScheduleAll compiles, schedules and simulates every source loop through
// the concurrent batch pipeline. Per-loop failures are reported in
// Batch.Loops[i].Err (see Batch.FirstErr); ScheduleAll only fails on
// unusable options.
func ScheduleAll(sources []string, opt BatchOptions) (*Batch, error) {
	return ScheduleAllContext(context.Background(), sources, opt)
}

// ScheduleAllContext is ScheduleAll under a cancellation context, threaded
// through the worker pool and checked between the compile, schedule and
// simulate stages of every request. Combine with BatchOptions.Deadline /
// RequestTimeout for time-bounded batches: cut-off requests fail
// individually while completed results are returned in request order.
func ScheduleAllContext(ctx context.Context, sources []string, opt BatchOptions) (*Batch, error) {
	reqs := make([]BatchRequest, len(sources))
	for i, src := range sources {
		reqs[i] = BatchRequest{Name: fmt.Sprintf("loop%d", i), Source: src}
	}
	return pipeline.RunContext(ctx, reqs, opt)
}

// ScheduleAllLoops is ScheduleAll over already parsed loops.
func ScheduleAllLoops(loops []*Loop, opt BatchOptions) (*Batch, error) {
	return ScheduleAllLoopsContext(context.Background(), loops, opt)
}

// ScheduleAllLoopsContext is ScheduleAllLoops under a cancellation context.
func ScheduleAllLoopsContext(ctx context.Context, loops []*Loop, opt BatchOptions) (*Batch, error) {
	reqs := make([]BatchRequest, len(loops))
	for i, l := range loops {
		reqs[i] = BatchRequest{Name: fmt.Sprintf("loop%d", i), Loop: l}
	}
	return pipeline.RunContext(ctx, reqs, opt)
}

// CompareAll runs the paper's list-vs-new experiment for every source loop
// on machine m with trip count n, through the batch pipeline. It returns
// one Comparison per loop in input order plus the underlying batch (for
// schedules and stats). The first per-loop failure aborts with an error.
func CompareAll(sources []string, m Machine, n int, opt BatchOptions) ([]Comparison, *Batch, error) {
	return CompareAllContext(context.Background(), sources, m, n, opt)
}

// CompareAllContext is CompareAll under a cancellation context.
func CompareAllContext(ctx context.Context, sources []string, m Machine, n int, opt BatchOptions) ([]Comparison, *Batch, error) {
	opt.Machines = []Machine{m}
	opt.N = n
	batch, err := ScheduleAllContext(ctx, sources, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := batch.FirstErr(); err != nil {
		return nil, batch, err
	}
	comps := make([]Comparison, len(batch.Loops))
	for i := range batch.Loops {
		lr := &batch.Loops[i]
		mr := lr.Machines[0]
		comps[i] = Comparison{
			Machine:     mr.Machine,
			N:           lr.N,
			ListTime:    mr.ListTime,
			SyncTime:    mr.SyncTime,
			Improvement: mr.Improvement,
			ListLBD:     mr.ListLBD,
			SyncLBD:     mr.SyncLBD,
			List:        mr.List,
			Sync:        mr.Sync,
		}
	}
	return comps, batch, nil
}
