package doacross_test

import (
	"fmt"

	"doacross"
)

// The three-call workflow: compile a DOACROSS loop, schedule it, and
// simulate the parallel execution time on n processors.
func Example() {
	prog, err := doacross.Compile(`
DO I = 1, N
  S1: B[I] = A[I-2] + E[I+1]
  S2: G[I-3] = A[I-1] * E[I+2]
  S3: A[I] = B[I] + C[I+3]
ENDDO`)
	if err != nil {
		panic(err)
	}
	m := doacross.UniformMachine(4, 1)
	list, _ := prog.ScheduleListProgramOrder(m)
	sync, _ := prog.ScheduleSync(m)
	fmt.Println("list:", doacross.Simulate(list, 100).Total, "cycles")
	fmt.Println("new: ", doacross.Simulate(sync, 100).Total, "cycles")
	// Output:
	// list: 1400 cycles
	// new:  409 cycles
}

// DoacrossSource shows the synchronized loop the paper's Fig. 1(b) depicts.
func ExampleProgram_DoacrossSource() {
	prog := doacross.MustCompile(`
DO I = 1, N
  S1: A[I] = A[I-1] + E[I]
ENDDO`)
	fmt.Print(prog.DoacrossSource())
	// Output:
	// DOACROSS I = 1, N
	//   Wait_Signal(S1, I-1);
	//   S1: A[I] = A[I-1]+E[I];
	//   Send_Signal(S1);
	// END_DOACROSS
}

// CountLexical classifies the loop-carried dependences the way the paper's
// Table 1 does.
func ExampleProgram_CountLexical() {
	prog := doacross.MustCompile(`
DO I = 1, N
  S1: B[I] = A[I-2] + E[I]
  S2: A[I] = F[I] * 2
ENDDO`)
	lfd, lbd := prog.CountLexical()
	fmt.Printf("%d LFD, %d LBD\n", lfd, lbd)
	// Output:
	// 0 LFD, 1 LBD
}

// Execute runs the detailed simulator against real data and verifies the
// parallel result equals sequential execution.
func ExampleExecute() {
	prog := doacross.MustCompile("DO I = 1, N\nA[I] = A[I-1] + E[I]\nENDDO")
	s, _ := prog.ScheduleSync(doacross.Machine2Issue(1))
	n := 20
	seq := prog.SeedStore(n, 1)
	par := seq.Clone()
	_ = prog.RunSequential(seq)
	_, _ = doacross.Execute(s, par, doacross.SimOptions{Lo: 1, Hi: n})
	fmt.Println("match:", seq.Diff(par) == "")
	// Output:
	// match: true
}

// Predict applies the LBD loop theorem analytically; for single-pair loops
// it reproduces the simulator exactly.
func ExamplePredict() {
	prog := doacross.MustCompile("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	s, _ := prog.ScheduleSync(doacross.UniformMachine(2, 1))
	fmt.Println(doacross.Predict(s, 100) == doacross.Simulate(s, 100).Total)
	// Output:
	// true
}

// Unroll amortizes synchronization: one Send/Wait pair covers k elements.
func ExampleProgram_Unroll() {
	prog := doacross.MustCompile("DO I = 1, N\nA[I] = A[I-1] + 1\nENDDO")
	un, _ := prog.Unroll(4)
	fmt.Println("statements:", len(un.Loop.Body))
	sends, waits := un.Sync.NumOps()
	fmt.Printf("sync ops for 4 elements: %d send, %d wait\n", sends, waits)
	// Output:
	// statements: 4
	// sync ops for 4 elements: 1 send, 1 wait
}
