package doacross

import (
	"testing"

	"doacross/internal/check"
	"doacross/internal/loopgen"
)

// TestDepPrecisionDifferential compiles 200 generated loops (50 under
// -short) twice — once with the precise dependence analysis, once with the
// seed's conservative baseline (CompileOptions.BaselineDeps) — and checks,
// per loop:
//
//   - the precise analysis never leaves more conservative pair verdicts than
//     the baseline, and proves at least as many pairs independent;
//   - every refined schedule passes the independent static verifier
//     (internal/check re-derives the dependence edges from the compiled code
//     and re-checks the paper's synchronization conditions) — refinement
//     must never admit an invalid schedule;
//   - CompileBest — the analysis-level never-degrades guard — simulates no
//     slower than the conservative baseline on every loop, and keeps the
//     precise compilation for the overwhelming majority (the scheduling
//     heuristic is not monotone in the constraint set, so the guard exists
//     for the rare loop where the conservative webs steer it better).
func TestDepPrecisionDifferential(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 50
	}
	loops := loopgen.Suite(0xD3B0, count)
	machines := []Machine{NewMachine(4, 1), Machine2Issue(2), UniformMachine(2, 1)}
	const n = 96

	refined, keptPrecise := 0, 0
	for i, src := range loops {
		precise, err := CompileWith(src, CompileOptions{})
		if err != nil {
			t.Fatalf("loop %d: precise compile: %v\n%s", i, err, src)
		}
		baseline, err := CompileWith(src, CompileOptions{BaselineDeps: true})
		if err != nil {
			t.Fatalf("loop %d: baseline compile: %v\n%s", i, err, src)
		}

		_, pIndep, pCons := precise.Analysis.Counts()
		_, bIndep, bCons := baseline.Analysis.Counts()
		if pCons > bCons {
			t.Fatalf("loop %d: precise analysis is more conservative than the baseline (%d > %d pairs)\n%s",
				i, pCons, bCons, src)
		}
		if pIndep < bIndep {
			t.Fatalf("loop %d: precise analysis proves fewer pairs independent than the baseline (%d < %d)\n%s",
				i, pIndep, bIndep, src)
		}
		if pCons < bCons || pIndep > bIndep {
			refined++
		}

		m := machines[i%len(machines)]
		ps, err := precise.ScheduleBest(m)
		if err != nil {
			t.Fatalf("loop %d: precise schedule: %v\n%s", i, err, src)
		}
		if diags := check.Verify(ps); len(diags.Errors()) != 0 {
			t.Fatalf("loop %d: refined schedule rejected by the verifier:\n%s\n%s",
				i, diags.Errors(), src)
		}

		guarded, kept, err := CompileBest(src, m, n, CompileOptions{})
		if err != nil {
			t.Fatalf("loop %d: CompileBest: %v\n%s", i, err, src)
		}
		if kept {
			keptPrecise++
		}
		gs, err := guarded.ScheduleBest(m)
		if err != nil {
			t.Fatalf("loop %d: guarded schedule: %v\n%s", i, err, src)
		}
		bs, err := baseline.ScheduleBest(m)
		if err != nil {
			t.Fatalf("loop %d: baseline schedule: %v\n%s", i, err, src)
		}
		gt := Simulate(gs, n).Total
		bt := Simulate(bs, n).Total
		if gt > bt {
			t.Errorf("loop %d on %s: guarded compile simulates slower than baseline (%d > %d cycles)\n%s",
				i, m.Name, gt, bt, src)
		}
	}
	if refined == 0 {
		t.Fatalf("no loop of %d was refined by the precise analysis; the differential is vacuous", count)
	}
	if keptPrecise < count*3/4 {
		t.Fatalf("CompileBest kept the precise analysis on only %d/%d loops; the guard is doing the analysis's job", keptPrecise, count)
	}
	t.Logf("depdiff: %d/%d loops refined, precise analysis kept on %d, all refined schedules verifier-accepted, guard never slower",
		refined, count, keptPrecise)
}
